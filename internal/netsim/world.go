package netsim

import (
	"net/netip"
	"time"

	"snmpv3fp/internal/vclock"
)

// Region is a continent code as used in the paper's regional analyses.
type Region string

// Regions.
const (
	RegionEU Region = "EU"
	RegionNA Region = "NA"
	RegionAS Region = "AS"
	RegionSA Region = "SA"
	RegionAF Region = "AF"
	RegionOC Region = "OC"
)

// AllRegions lists the regions in the paper's display order.
var AllRegions = []Region{RegionEU, RegionNA, RegionAS, RegionSA, RegionAF, RegionOC}

// ASKind is the coarse business of an autonomous system.
type ASKind int

// AS kinds.
const (
	ASTransit ASKind = iota // operates core routers
	ASEyeball               // residential access: CPE population
	ASHosting               // data centers: Net-SNMP servers
)

// AS is one simulated autonomous system.
type AS struct {
	Number     uint32
	Region     Region
	Kind       ASKind
	Name       string
	V4Prefixes []netip.Prefix
	V6Prefixes []netip.Prefix
	// DominantVendor is the AS's primary router vendor (ground truth for
	// the vendor-dominance experiments).
	DominantVendor string
	// RDNSDomain is the suffix of the AS's PTR records, "" when the AS
	// publishes none.
	RDNSDomain string
}

// Quirk flags behavioural anomalies that the paper's filtering pipeline must
// catch. A device carries at most one quirk.
type Quirk int

// Device quirks.
const (
	QuirkNone Quirk = iota
	// QuirkMissingEngineID: responds with an empty engine ID.
	QuirkMissingEngineID
	// QuirkShortEngineID: engine ID shorter than four bytes.
	QuirkShortEngineID
	// QuirkZeroBootsTime: reports engineBoots == engineTime == 0.
	QuirkZeroBootsTime
	// QuirkFutureTime: reports an engine time ahead of wall time.
	QuirkFutureTime
	// QuirkDrift: unstable engine time (bad clock); the derived last-reboot
	// time moves by more than the paper's 10 s threshold between scans.
	QuirkDrift
	// QuirkReboot: the device reboots between the two campaigns.
	QuirkReboot
	// QuirkChurn: the IP is reassigned between campaigns, so the second
	// scan sees a different device (different engine ID) at the same IP.
	QuirkChurn
	// QuirkMultiResponse: answers each probe with a handful of duplicates.
	QuirkMultiResponse
	// QuirkAmplify: answers a single probe with a storm of duplicates
	// (Section 8's 48.5M-response device, scaled down).
	QuirkAmplify
	// QuirkLoadBalancer: one IP fronts a pool of distinct devices; probes
	// reach pool members in turn, so the engine ID varies per request —
	// the signal the paper's conclusion proposes exploiting to infer load
	// balancers (Section 9).
	QuirkLoadBalancer
)

// Device is one simulated SNMP entity.
type Device struct {
	ID      int
	Class   DeviceClass
	Profile *Profile
	ASN     uint32

	V4 []netip.Addr
	V6 []netip.Addr

	EngineID []byte
	// Boots is engineBoots at world start.
	Boots int64
	// BootTime is the instant of the last SNMP engine restart.
	BootTime time.Time

	// Responds is the device's ACL posture towards the scan vantage point.
	Responds bool

	Quirk Quirk
	// RebootPeriod, when positive, schedules recurring restarts: the
	// device reboots every period after BootTime, incrementing engine
	// boots. This drives the longitudinal monitoring extension.
	RebootPeriod time.Duration
	// DriftRate is seconds of engine-time drift per wall-clock second for
	// QuirkDrift devices.
	DriftRate float64
	// AltEngineID etc. describe the replacement device for QuirkChurn.
	AltEngineID []byte
	AltBoots    int64
	AltBootTime time.Time
	// Pool holds the backend identities of a QuirkLoadBalancer device.
	Pool []PoolIdentity
	// FlipAt is when churn or a mid-measurement reboot takes effect; it is
	// scheduled between the two campaigns that probe this device's family.
	FlipAt time.Time
	// DupCount is the duplicate-response count for QuirkMultiResponse /
	// QuirkAmplify.
	DupCount int

	// ipidBase seeds the device's IP-ID counter.
	ipidBase uint16
	// ipidRate is counter increments per second from background traffic.
	ipidRate float64
	// tsSkewPPM is the device clock's skew in parts per million and
	// tsOffset its TCP timestamp origin: the signals clock-skew-based
	// sibling detection (Scheitle et al.) reads.
	tsSkewPPM float64
	tsOffset  uint32

	// InITDK / InAtlas / InHitlist mark membership in the synthetic
	// third-party router datasets.
	InITDK    bool
	InAtlas   bool
	InHitlist bool
}

// Router reports whether the device is a core router.
func (d *Device) Router() bool { return d.Class == ClassRouter }

// AllAddrs returns every interface address, IPv4 first.
func (d *Device) AllAddrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(d.V4)+len(d.V6))
	out = append(out, d.V4...)
	out = append(out, d.V6...)
	return out
}

// World is the simulated Internet.
type World struct {
	Cfg     Config
	Clock   *vclock.Virtual
	ASes    []*AS
	Devices []*Device

	asByNumber map[uint32]*AS
	byAddr     map[netip.Addr]*Device
	// byAddr4 indexes the IPv4 subset of byAddr by packed address: the
	// campaign hot path resolves almost every probe through this
	// open-addressing table instead of hashing a full netip.Addr.
	byAddr4 addr4Index
	// churnFlip is the instant at which QuirkChurn devices hand their IPs
	// to the replacement device and QuirkReboot devices restart.
	churnFlip time.Time
	// scanEpoch increments per campaign; used for deterministic per-scan
	// response loss.
	scanEpoch int
	// vantageSalt folds the scan viewpoint into every path-level random
	// draw (fault coins, jitter, spoofed sources, RTTs) without touching
	// device ground truth, so different vantage points see the same devices
	// through different paths. Zero — viewpoint 0 — reproduces the
	// historical single-vantage path exactly. See SetViewpoint.
	vantageSalt uint64

	ptr map[netip.Addr]string
	// hitlistFiller holds unresponsive IPv6 hitlist entries.
	hitlistFiller []netip.Addr

	// faults tallies the datagrams the path-fault layer injected or dropped
	// during the current campaign (see faults.go).
	faults faultCounters
}

// ASByNumber resolves an AS number.
func (w *World) ASByNumber(n uint32) *AS { return w.asByNumber[n] }

// DeviceAt returns the device holding addr, nil when the address is
// unallocated.
func (w *World) DeviceAt(addr netip.Addr) *Device { return w.byAddr[addr] }

// deviceAt is the hot-path lookup behind respond: IPv4 probes — the bulk of
// every campaign — go through the packed uint32 index.
func (w *World) deviceAt(addr netip.Addr) *Device {
	if addr.Is4() {
		b := addr.As4()
		return w.byAddr4.get(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
	}
	return w.byAddr[addr]
}

// addr4Index is a fixed-size open-addressing table from packed IPv4 address
// to device. The generic map's hashing and bucket machinery was the top
// entry on the campaign CPU profile once the response path itself went
// allocation-free; a Fibonacci-hashed flat table with linear probing makes
// the lookup a couple of cache lines with no per-call overhead. The table
// is built once after world generation and read-only afterwards, so it
// needs no growth or deletion support. Empty slots are vals[i] == nil
// (0.0.0.0 is never allocated, but keying emptiness off the value avoids
// even that assumption).
type addr4Index struct {
	keys  []uint32
	vals  []*Device
	mask  uint32
	shift uint
}

// get returns the device for packed key k, nil when absent.
func (ix *addr4Index) get(k uint32) *Device {
	if ix.vals == nil {
		return nil
	}
	i := (k * 0x9E3779B1) >> ix.shift
	for {
		v := ix.vals[i]
		if v == nil || ix.keys[i] == k {
			return v
		}
		i = (i + 1) & ix.mask
	}
}

// buildAddr4Index (re)builds byAddr4 from the IPv4 entries of byAddr at
// <= 50% load. Generation calls it once after the last address is assigned.
func (w *World) buildAddr4Index() {
	n := 0
	for a := range w.byAddr {
		if a.Is4() {
			n++
		}
	}
	size := uint32(8)
	shift := uint(29)
	for int(size) < 2*n {
		size <<= 1
		shift--
	}
	ix := addr4Index{
		keys:  make([]uint32, size),
		vals:  make([]*Device, size),
		mask:  size - 1,
		shift: shift,
	}
	for a, d := range w.byAddr {
		if !a.Is4() {
			continue
		}
		b := a.As4()
		k := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		i := (k * 0x9E3779B1) >> ix.shift
		for ix.vals[i] != nil {
			i = (i + 1) & ix.mask
		}
		ix.keys[i] = k
		ix.vals[i] = d
	}
	w.byAddr4 = ix
}

// PTR returns the reverse-DNS name of addr, "" when none exists.
func (w *World) PTR(addr netip.Addr) string { return w.ptr[addr] }

// RespondsAt reports whether the SNMP agent at addr answers probes from the
// vantage point: the address must be allocated, the device's management
// plane reachable, and — for routers — the per-interface ACL open
// (Section 6.2.2's operators confirmed some interfaces drop management
// traffic while others on the same router answer).
func (w *World) RespondsAt(addr netip.Addr) bool {
	d := w.byAddr[addr]
	if d == nil || !d.Responds {
		return false
	}
	if d.Class == ClassRouter && !w.coin(addr, 0xAC1, w.Cfg.RouterIfaceProb) {
		return false
	}
	return true
}

// SetViewpoint selects the vantage point the world is observed from. The
// viewpoint perturbs every path-level draw — fault-layer coins, delay
// jitter, off-path spoof identities and per-path RTTs — as a pure function
// of (world seed, viewpoint, address, scan epoch), while device ground
// truth (which devices exist, respond, their identities and quirks) is
// viewpoint-independent. Viewpoint 0 is the reference vantage: it leaves
// every draw byte-identical to a world that never called SetViewpoint,
// which is what lets a distributed campaign's viewpoint-0 merge stay
// byte-identical to a single-process scan. Viewpoints are the simulated
// form of path diversity: two vantages disagree about a source only because
// the paths differ, so cross-vantage agreement becomes a validation signal.
func (w *World) SetViewpoint(viewpoint int) {
	w.vantageSalt = ViewpointSalt(w.Cfg.Seed, viewpoint)
}

// ViewpointSalt derives the path-diversity salt for a viewpoint: 0 for the
// reference viewpoint, a splitmix64-mixed function of (seed, viewpoint)
// otherwise. Exported so vantage nodes and the coordinator agree on the
// derivation without sharing a World.
func ViewpointSalt(seed int64, viewpoint int) uint64 {
	if viewpoint == 0 {
		return 0
	}
	s := uint64(seed)*0x9E3779B97F4A7C15 + uint64(viewpoint)
	s += 0x9E3779B97F4A7C15
	z := s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1 // never collide with the reference viewpoint
	}
	return z
}

// BeginScan marks the start of a new campaign, refreshing the per-scan
// response-loss pattern and resetting the fault-injection tally.
func (w *World) BeginScan() {
	w.scanEpoch++
	w.faults.reset()
}

// ScanEpoch returns the current campaign index (0 before the first
// BeginScan).
func (w *World) ScanEpoch() int { return w.scanEpoch }

// FNV-1a parameters (matching hash/fnv's 64-bit variant).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hash64 produces a stable per-world hash for deterministic coin flips.
//
// It is FNV-1a over the 16 address bytes, the 8 salt bytes (little-endian)
// and the 8 seed bytes (little-endian) — byte-identical to hashing the same
// 32 bytes through hash/fnv (TestHash64MatchesStdlibFNV pins this), but
// inlined: the hash/fnv round trip (interface dispatch plus a per-call
// digest allocation escape) was the single hottest block of the simulated
// campaign profile, and every fault coin and RTT draw funnels through here.
//
// The hash is split at the address/salt boundary: addrHash folds the 16
// address bytes, saltHash continues with the salt and seed. A caller that
// draws several per-address coins (the transport draws an RTT, a loss coin
// and possibly a whole fault profile per probe) computes addrHash once and
// fans out through saltHash, paying for the address bytes once.
func (w *World) hash64(addr netip.Addr, salt uint64) uint64 {
	return w.saltHash(w.addrHash(addr), salt)
}

// fnvV4Prefix is the FNV-1a state after the first 12 bytes of As16() for
// any IPv4 address — ten zero bytes then 0xFF, 0xFF (the v4-mapped prefix).
// Hoisting it turns the v4 fold (the overwhelming majority of a campaign)
// into four FNV rounds instead of sixteen.
var fnvV4Prefix = func() uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 10; i++ {
		h *= fnvPrime64 // XOR with a zero byte is the identity
	}
	h = (h ^ 0xFF) * fnvPrime64
	h = (h ^ 0xFF) * fnvPrime64
	return h
}()

// addrHash is the address-prefix state of hash64: FNV-1a over As16().
func (w *World) addrHash(addr netip.Addr) uint64 {
	if addr.Is4() {
		b := addr.As4()
		h := fnvV4Prefix
		h = (h ^ uint64(b[0])) * fnvPrime64
		h = (h ^ uint64(b[1])) * fnvPrime64
		h = (h ^ uint64(b[2])) * fnvPrime64
		h = (h ^ uint64(b[3])) * fnvPrime64
		return h
	}
	b := addr.As16()
	h := uint64(fnvOffset64)
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// saltHash finishes hash64 from an addrHash state: the salt bytes then the
// world-seed bytes, little-endian, through the same FNV-1a fold.
func (w *World) saltHash(ah, salt uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		ah = (ah ^ (salt >> i & 0xFF)) * fnvPrime64
	}
	seed := uint64(w.Cfg.Seed)
	for i := 0; i < 64; i += 8 {
		ah = (ah ^ (seed >> i & 0xFF)) * fnvPrime64
	}
	return ah
}

// coin returns a deterministic pseudo-random coin flip for addr with the
// given probability and salt.
func (w *World) coin(addr netip.Addr, salt uint64, prob float64) bool {
	return float64(w.hash64(addr, salt))/float64(^uint64(0)) < prob
}

// coinH is coin over a precomputed addrHash state.
func (w *World) coinH(ah, salt uint64, prob float64) bool {
	return float64(w.saltHash(ah, salt))/float64(^uint64(0)) < prob
}

// PoolIdentity is one backend behind a load-balanced VIP.
type PoolIdentity struct {
	EngineID []byte
	Boots    int64
	BootTime time.Time
}

// scheduledBoot applies the recurring-reboot schedule: the device restarts
// every RebootPeriod after BootTime.
func (d *Device) scheduledBoot(now time.Time) (int64, time.Time) {
	if d.RebootPeriod <= 0 || !now.After(d.BootTime) {
		return d.Boots, d.BootTime
	}
	n := int64(now.Sub(d.BootTime) / d.RebootPeriod)
	if n <= 0 {
		return d.Boots, d.BootTime
	}
	return d.Boots + n, d.BootTime.Add(time.Duration(n) * d.RebootPeriod)
}

// activeIdentity resolves which engine identity answers at the given
// instant, accounting for churn, mid-measurement reboots, and recurring
// reboot schedules.
func (d *Device) activeIdentity(now time.Time) (engineID []byte, boots int64, bootTime time.Time) {
	switch d.Quirk {
	case QuirkChurn:
		if now.After(d.FlipAt) {
			return d.AltEngineID, d.AltBoots, d.AltBootTime
		}
	case QuirkReboot:
		if now.After(d.FlipAt) {
			return d.EngineID, d.Boots + 1, d.FlipAt
		}
	}
	boots, bootTime = d.scheduledBoot(now)
	return d.EngineID, boots, bootTime
}

// engineTime computes the engineTime value (seconds since last SNMP engine
// restart) the device reports at the given instant, including clock-quality
// quirks.
func (d *Device) engineTime(now, bootTime time.Time, worldStart time.Time) int64 {
	et := int64(now.Sub(bootTime) / time.Second)
	switch d.Quirk {
	case QuirkDrift:
		// Engine time ticks too fast or too slow; by the second campaign
		// the derived last-reboot time has moved well past the paper's
		// 10-second consistency threshold.
		drift := d.DriftRate * now.Sub(worldStart).Seconds()
		et += int64(drift)
		if et < 0 {
			et = 0
		}
	case QuirkFutureTime:
		// A broken encoder reports a negative engine time, so the derived
		// last-reboot time lands in the future — the paper's "engine time
		// in the future" filter case.
		return -int64(30 * 24 * time.Hour / time.Second)
	case QuirkZeroBootsTime:
		return 0
	}
	if et < 0 {
		et = 0
	}
	return et
}

// IPIDSample returns the value of the identification field the device would
// use for a packet emitted from addr at the given instant — the primitive
// MIDAR-style alias resolution builds on. ok is false when the address is
// unallocated or the device does not answer ICMP from the vantage point.
func (w *World) IPIDSample(addr netip.Addr, now time.Time, probeSeq int) (uint16, bool) {
	d := w.byAddr[addr]
	if d == nil || !d.Responds {
		return 0, false
	}
	// Not every interface answers direct ICMP/UDP probes from the alias
	// resolver's vantage point.
	if !w.coin(addr, 0x1C3, 0.55) {
		return 0, false
	}
	elapsed := now.Sub(w.Cfg.StartTime).Seconds()
	switch d.Profile.IPID {
	case IPIDShared:
		// One counter for the whole box: base + traffic + our own probes.
		v := float64(d.ipidBase) + d.ipidRate*elapsed + float64(probeSeq)
		return uint16(uint64(v) & 0xFFFF), true
	case IPIDPerInterface:
		// Independent counter per interface: offset by an address hash so
		// different interfaces never share a sequence.
		off := w.hash64(addr, 0x1D0)
		v := float64(uint16(off)) + d.ipidRate*elapsed + float64(probeSeq)
		return uint16(uint64(v) & 0xFFFF), true
	case IPIDRandom:
		return uint16(w.hash64(addr, uint64(now.UnixNano())^uint64(probeSeq))), true
	default: // IPIDZero
		return 0, true
	}
}

// TTLSample returns the initial TTL a reply from addr carries, the signal
// of iTTL fingerprinting. ok is false for unallocated or silent addresses.
func (w *World) TTLSample(addr netip.Addr) (int, bool) {
	d := w.byAddr[addr]
	if d == nil || !d.Responds {
		return 0, false
	}
	return d.Profile.InitTTL, true
}

// tsHz is the TCP timestamp clock frequency the simulation uses.
const tsHz = 1000.0

// TCPTimestamp models reading the TCP timestamp option from a connection
// to addr at the given instant. All interfaces of a device share one clock
// (same skew, same origin) — the invariant sibling detection exploits. It
// requires an open TCP service, exactly like banner grabbing; routers
// without one yield ok == false, which is why the technique "largely
// centers on servers" (paper Section 7.3).
func (w *World) TCPTimestamp(addr netip.Addr, now time.Time) (uint32, bool) {
	if _, open := w.TCPBanner(addr); !open {
		return 0, false
	}
	d := w.byAddr[addr]
	elapsed := now.Sub(w.Cfg.StartTime).Seconds()
	v := elapsed * tsHz * (1 + d.tsSkewPPM*1e-6)
	return d.tsOffset + uint32(int64(v)), true
}

// TCPBanner models a banner-grab connection to addr: it returns the banner
// when the device exposes an open TCP service to the vantage point, and
// open=false otherwise (closed or filtered — the common case for routers).
func (w *World) TCPBanner(addr netip.Addr) (banner string, open bool) {
	d := w.byAddr[addr]
	if d == nil {
		return "", false
	}
	if d.Profile.Banner == "" {
		return "", false
	}
	if !w.coin(addr, 0x7C9, d.Profile.OpenTCPProb) {
		return "", false
	}
	return d.Profile.Banner, true
}
