package netsim

import (
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"testing"
	"time"

	"snmpv3fp/internal/ber"
	"snmpv3fp/internal/snmp"
)

// sampleReport builds one real discovery-report wire image to mutate.
func sampleReport(t *testing.T) []byte {
	t.Helper()
	req := snmp.NewDiscoveryRequest(7, 7)
	wire, err := snmp.NewDiscoveryReport(req, []byte{0x80, 0, 0, 0x09, 4, 1, 2, 3, 4, 5}, 3, 12345, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestTruncatePayloadAlwaysTruncated(t *testing.T) {
	rep := sampleReport(t)
	for h := uint64(0); h < 64; h++ {
		cut := TruncatePayload(h, rep)
		if len(cut) >= len(rep) || len(cut) < 1 {
			t.Fatalf("h=%d: cut length %d of %d", h, len(cut), len(rep))
		}
		_, err := snmp.ParseDiscoveryResponse(cut)
		if err == nil {
			t.Fatalf("h=%d: truncated payload parsed", h)
		}
		if !errors.Is(err, ber.ErrTruncated) {
			t.Fatalf("h=%d: error %v does not carry ber.ErrTruncated", h, err)
		}
	}
}

func TestCorruptPayloadMalformed(t *testing.T) {
	rep := sampleReport(t)
	orig := append([]byte(nil), rep...)
	bad := CorruptPayload(rep)
	if _, err := snmp.ParseDiscoveryResponse(bad); err == nil {
		t.Fatal("corrupted payload parsed")
	}
	if string(rep) != string(orig) {
		t.Fatal("CorruptPayload mutated its input")
	}
	if string(TruncatePayload(5, rep)) != string(orig[:1+5%(len(orig)-1)]) {
		t.Fatal("TruncatePayload cut at unexpected offset")
	}
	if string(rep) != string(orig) {
		t.Fatal("TruncatePayload mutated its input")
	}
}

func TestMangleProbeChangesMsgID(t *testing.T) {
	probe, err := snmp.EncodeDiscoveryRequest(42, 42)
	if err != nil {
		t.Fatal(err)
	}
	mangled := mangleProbe(probe)
	msg, err := snmp.DecodeV3(mangled)
	if err != nil {
		t.Fatalf("mangled probe must still decode: %v", err)
	}
	if msg.MsgID == 42 {
		t.Fatal("mangleProbe left the msgID unchanged")
	}
	if msg.MsgID < 0 {
		t.Fatalf("mangled msgID %d is negative", msg.MsgID)
	}
	// Garbage passes through untouched instead of panicking.
	if got := mangleProbe([]byte("junk")); string(got) != "junk" {
		t.Fatalf("garbage probe rewritten to %x", got)
	}
}

func TestSpoofedSourcesNeverProbed(t *testing.T) {
	w := Generate(TinyConfig(3))
	prefixes := w.ScanPrefixes4()
	v4Spoof := netip.MustParsePrefix("240.0.0.0/4")
	v6Spoof := netip.MustParsePrefix("2001:db8::/32")
	for i, d := range w.Devices {
		if i >= 64 {
			break
		}
		for _, a := range d.V4 {
			s := w.spoofedSource(a)
			if !v4Spoof.Contains(s) {
				t.Fatalf("v4 spoof %v outside class E", s)
			}
			for _, p := range prefixes {
				if p.Contains(s) {
					t.Fatalf("spoofed source %v inside scanned prefix %v", s, p)
				}
			}
		}
		for _, a := range d.V6 {
			if s := w.spoofedSource(a); !v6Spoof.Contains(s) {
				t.Fatalf("v6 spoof %v outside 2001:db8::/32", s)
			}
		}
	}
}

func TestSpoofedPayloadLooksLegitimate(t *testing.T) {
	w := Generate(TinyConfig(3))
	addr := w.Devices[0].V4[0]
	dr, err := snmp.ParseDiscoveryResponse(w.spoofedPayload(addr))
	if err != nil {
		t.Fatalf("spoofed payload must parse (the scanner rejects it by source): %v", err)
	}
	if len(dr.EngineID) == 0 {
		t.Fatal("spoofed payload carries no engine ID")
	}
}

// drainFaulted probes every v4 address of the first n devices at fixed
// virtual instants and returns the canonically sorted deliveries.
func drainFaulted(t *testing.T, seed int64, f *FaultProfile, n int) ([]simPacket, FaultTally) {
	t.Helper()
	w := Generate(TinyConfig(seed))
	w.Cfg.Faults = f
	w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
	w.BeginScan()
	tr := w.NewTransport()
	probe, err := snmp.EncodeDiscoveryRequest(9, 9)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []simPacket
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			src, payload, at, err := tr.Recv()
			if err == io.EOF {
				return
			}
			pkts = append(pkts, simPacket{src: src, payload: payload, at: at})
		}
	}()
	base := w.Clock.Now()
	i := 0
	for _, d := range w.Devices {
		if i >= n {
			break
		}
		for _, a := range d.V4 {
			if err := tr.SendAt(a, probe, base.Add(time.Duration(i)*time.Millisecond)); err != nil {
				t.Fatal(err)
			}
			i++
		}
	}
	tr.Close()
	<-done
	sort.Slice(pkts, func(i, j int) bool {
		if !pkts[i].at.Equal(pkts[j].at) {
			return pkts[i].at.Before(pkts[j].at)
		}
		if pkts[i].src != pkts[j].src {
			return pkts[i].src.Less(pkts[j].src)
		}
		return string(pkts[i].payload) < string(pkts[j].payload)
	})
	return pkts, w.FaultStats()
}

func packetDigest(pkts []simPacket) string {
	s := ""
	for _, p := range pkts {
		s += fmt.Sprintf("%v %d %x\n", p.src, p.at.UnixNano(), p.payload)
	}
	return s
}

func TestFaultedDeliveryDeterministic(t *testing.T) {
	a, statsA := drainFaulted(t, 5, FullHostileProfile(), 200)
	b, statsB := drainFaulted(t, 5, FullHostileProfile(), 200)
	if packetDigest(a) != packetDigest(b) {
		t.Fatal("identical seeds produced different faulted deliveries")
	}
	if statsA != statsB {
		t.Fatalf("fault tallies differ: %+v vs %+v", statsA, statsB)
	}
	if statsA == (FaultTally{}) {
		t.Fatal("full hostile profile injected no faults at all")
	}
}

func TestAdditiveProfilePreservesOriginals(t *testing.T) {
	clean, _ := drainFaulted(t, 5, nil, 200)
	faulted, stats := drainFaulted(t, 5, HostileProfile(), 200)
	if stats.Lost != 0 || stats.RateLimited != 0 || stats.Mismatched != 0 {
		t.Fatalf("additive profile ran destructive faults: %+v", stats)
	}
	if stats.Duplicated == 0 || stats.Truncated == 0 || stats.Corrupted == 0 || stats.OffPath == 0 {
		t.Fatalf("additive profile too quiet over 200 probes: %+v", stats)
	}
	// Every clean delivery survives in the faulted run (possibly delayed),
	// so per-(src, payload) counts can only grow.
	count := func(pkts []simPacket) map[string]int {
		m := map[string]int{}
		for _, p := range pkts {
			m[p.src.String()+"|"+string(p.payload)]++
		}
		return m
	}
	cc, fc := count(clean), count(faulted)
	for k, n := range cc {
		if fc[k] < n {
			t.Fatalf("clean delivery lost under additive faults: %q %d -> %d", k[:16], n, fc[k])
		}
	}
	if len(faulted) != len(clean)+int(stats.Duplicated+stats.Truncated+stats.Corrupted+stats.OffPath) {
		t.Fatalf("delivery count %d does not reconcile with clean %d + injected %+v",
			len(faulted), len(clean), stats)
	}
}

func TestFaultStatsResetOnBeginScan(t *testing.T) {
	_, stats := drainFaulted(t, 5, HostileProfile(), 100)
	if stats == (FaultTally{}) {
		t.Fatal("no faults injected")
	}
	w := Generate(TinyConfig(5))
	w.Cfg.Faults = HostileProfile()
	w.faults.offPath.Add(3)
	w.BeginScan()
	if got := w.FaultStats(); got != (FaultTally{}) {
		t.Fatalf("BeginScan did not reset fault tallies: %+v", got)
	}
}

func TestFaultEpochsRedraw(t *testing.T) {
	// The same address redraws its fault coins every campaign: across many
	// addresses and two epochs, at least one decision must flip.
	w := Generate(TinyConfig(5))
	w.Cfg.Faults = HostileProfile()
	w.BeginScan()
	first := map[netip.Addr]bool{}
	n := 0
	for _, d := range w.Devices {
		if n >= 500 {
			break
		}
		for _, a := range d.V4 {
			first[a] = w.epochCoin(a, saltDuplicate, 0.08)
			n++
		}
	}
	w.BeginScan()
	flipped := false
	for a, v := range first {
		if w.epochCoin(a, saltDuplicate, 0.08) != v {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("fault decisions identical across scan epochs")
	}
}
