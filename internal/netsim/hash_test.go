package netsim

import (
	"hash/fnv"
	"net/netip"
	"testing"
)

// TestHash64MatchesStdlibFNV pins the inlined split-state hash against
// hash/fnv: hash64(addr, salt) must be byte-identical to FNV-1a over the 16
// address bytes, the 8 little-endian salt bytes and the 8 little-endian seed
// bytes. The inlined fold (and its precomputed v4-mapped prefix state) exists
// purely for speed; any drift here would silently re-randomize every
// deterministic coin in the simulation.
func TestHash64MatchesStdlibFNV(t *testing.T) {
	w := &World{Cfg: Config{Seed: -7777}}
	addrs := []netip.Addr{
		netip.MustParseAddr("1.2.3.4"),
		netip.MustParseAddr("0.0.0.0"),
		netip.MustParseAddr("255.255.255.255"),
		netip.MustParseAddr("198.51.100.17"),
		netip.MustParseAddr("2001:db8::1"),
		netip.MustParseAddr("::"),
		netip.MustParseAddr("fe80::dead:beef"),
	}
	salts := []uint64{0, 1, 0x277, 0xAC1, saltSendErr, ^uint64(0)}
	for _, addr := range addrs {
		for _, salt := range salts {
			h := fnv.New64a()
			b := addr.As16()
			h.Write(b[:])
			var tail [16]byte
			for i := 0; i < 8; i++ {
				tail[i] = byte(salt >> (8 * i))
				tail[8+i] = byte(uint64(w.Cfg.Seed) >> (8 * i))
			}
			h.Write(tail[:])
			if got, want := w.hash64(addr, salt), h.Sum64(); got != want {
				t.Errorf("hash64(%v, %#x) = %#x, want stdlib FNV-1a %#x", addr, salt, got, want)
			}
		}
	}
}

// TestAddr4IndexMatchesByAddr checks the open-addressing IPv4 device index
// against the authoritative netip map: every allocated IPv4 address resolves
// to the same device, and unallocated probes miss cleanly.
func TestAddr4IndexMatchesByAddr(t *testing.T) {
	w := tinyWorld(t)
	n := 0
	for a, want := range w.byAddr {
		if !a.Is4() {
			continue
		}
		n++
		if got := w.deviceAt(a); got != want {
			t.Fatalf("deviceAt(%v) = %p, want %p", a, got, want)
		}
	}
	if n == 0 {
		t.Fatal("world has no IPv4 allocations")
	}
	for _, s := range []string{"240.0.0.1", "0.0.0.0", "203.0.113.254"} {
		a := netip.MustParseAddr(s)
		if _, allocated := w.byAddr[a]; allocated {
			continue
		}
		if got := w.deviceAt(a); got != nil {
			t.Errorf("deviceAt(%v) = %p for unallocated address", a, got)
		}
	}
}
