package netsim

import "snmpv3fp/internal/obs"

// RegisterMetrics republishes the world's fault tallies into reg as
// read-time counter callbacks in the `snmpfp_netsim_faults_total` family,
// one series per fault kind. The callbacks read the same atomics FaultStats
// snapshots, so the metric values reconcile exactly with FaultStats at any
// instant — no double accounting, no extra work on the fault hot path.
//
// Like FaultStats, the tallies reset at BeginScan, so these series describe
// the current campaign (Prometheus treats the reset as a counter restart).
func (w *World) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	kinds := []struct {
		kind string
		fn   func() uint64
	}{
		{"lost", w.faults.lost.Load},
		{"rate_limited", w.faults.rateLimited.Load},
		{"mismatched", w.faults.mismatched.Load},
		{"duplicated", w.faults.duplicated.Load},
		{"truncated", w.faults.truncated.Load},
		{"corrupted", w.faults.corrupted.Load},
		{"off_path", w.faults.offPath.Load},
		{"delayed", w.faults.delayed.Load},
		{"transient_send", w.faults.sendErrs.Load},
	}
	for _, k := range kinds {
		reg.CounterFunc("snmpfp_netsim_faults_total", k.fn, obs.L("kind", k.kind))
	}
	reg.Help("snmpfp_netsim_faults_total", "path faults injected since BeginScan, by kind")
	reg.GaugeFunc("snmpfp_netsim_scan_epoch", func() float64 { return float64(w.ScanEpoch()) })
	reg.Help("snmpfp_netsim_scan_epoch", "campaigns begun against the simulated world")
}
