package netsim

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snmpv3fp/internal/snmp"
)

// TestTransportRecvReleaseHammer is the -race regression for the pooled
// receive path: many senders race many consumers that parse, deliberately
// scribble over, and then release every payload. Because each queued datagram
// must be singly owned, the scribbling cannot damage any other datagram — if
// the pool ever handed out a buffer still queued for (or held by) another
// consumer, some well-formed report would arrive corrupted and fail to parse.
func TestTransportRecvReleaseHammer(t *testing.T) {
	w := tinyWorld(t)
	w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
	probe := snmp.AppendDiscoveryRequest(nil, 42, 4242)

	var addrs []netip.Addr
	for _, d := range w.Devices {
		if len(d.V4) > 0 {
			addrs = append(addrs, d.V4[0])
		}
		if len(addrs) >= 64 {
			break
		}
	}
	if len(addrs) == 0 {
		t.Fatal("no device addresses")
	}

	tr := w.NewTransport()
	var parsed atomic.Uint64

	var consumers sync.WaitGroup
	for g := 0; g < 4; g++ {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			var resp snmp.DiscoveryResponse
			resp.ReportOID = make([]uint32, 0, 16)
			for {
				_, payload, _, err := tr.Recv()
				if err != nil {
					return
				}
				if perr := snmp.ParseDiscoveryResponseInto(&resp, payload); perr != nil {
					t.Errorf("parse: %v", perr)
				} else if len(resp.EngineID) == 0 {
					t.Error("parse: report without engine ID")
				}
				parsed.Add(1)
				// The consumer owns the payload until release: wreck it to
				// prove no other queued datagram shares the backing array.
				for i := range payload {
					payload[i] = 0xAA
				}
				tr.ReleasePayload(payload)
			}
		}()
	}

	var senders sync.WaitGroup
	for g := 0; g < 8; g++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			for round := 0; round < 30; round++ {
				for _, a := range addrs {
					if err := tr.Send(a, probe); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}
		}()
	}
	senders.Wait()
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	consumers.Wait()

	if got, queued := parsed.Load(), tr.QueuedResponses(); got != queued {
		t.Fatalf("consumed %d datagrams, transport queued %d", got, queued)
	}
	if parsed.Load() == 0 {
		t.Fatal("hammer consumed no datagrams")
	}
}
