package netsim

import (
	"time"

	"snmpv3fp/internal/probe"
)

// Multi-protocol agent behaviour: the non-SNMP probe modules (ICMP
// timestamp, NTP mode 6) answer from the same simulated devices through the
// same respond() seam, but with their own reachability models. That is the
// point of multi-protocol fingerprinting — an interface whose SNMP plane is
// closed may still answer ICMP, so the fused alias view covers devices the
// SNMPv3 campaign alone cannot.
//
// Every draw below is a pure function of (world seed, address, scan epoch),
// never of probe order, so multi-protocol campaigns stay byte-identical
// across worker counts, batch sizes and module orderings.

// Salts for the multi-protocol coins and per-device attributes; disjoint
// from the fault-layer salt block (0xF1000+) and the misc SNMP salts.
const (
	saltIcmpReach = 0xE1000
	saltIcmpLoss  = 0xE2000
	saltIcmpClock = 0xE3000
	saltIcmpJunk  = 0xE4000
	saltNtpReach  = 0xE5000
	saltNtpLoss   = 0xE6000
	saltNtpClock  = 0xE7000
)

const (
	// icmpReachProb is the per-interface probability an address answers
	// ICMP timestamp requests, independent of its SNMP posture: ICMP is
	// handled by the forwarding stack, not the management plane.
	icmpReachProb = 0.72
	// icmpLossProb is the per-campaign transient loss on the ICMP path.
	icmpLossProb = 0.02
	// ntpReachProb is the per-interface probability the NTP daemon is
	// reachable (mode 6 is frequently filtered since the 2014 amplification
	// attacks, so reachability is well below ICMP's).
	ntpReachProb = 0.55
	ntpLossProb  = 0.02
)

// respondICMPTs answers one ICMP timestamp request per the device vendor's
// quirk. Replies echo identifier, sequence and originate timestamp; receive
// and transmit carry the device clock — milliseconds since midnight UT plus
// a device-stable offset shared by every interface, which is the alias
// signal the icmp-ts module bins on.
func (w *World) respondICMPTs(d *Device, ah uint64, payload []byte, now time.Time, scratch []byte) ([]byte, int) {
	if d.Profile.TsQuirk == TsSilent {
		return nil, 0
	}
	// Lenient request parse: real stacks answer without verifying the
	// checksum, which keeps msgID-rewrite faults observable as mismatched
	// replies rather than silent drops.
	if len(payload) < 20 || payload[1] != 0 {
		return nil, 0
	}
	if !w.coinH(ah, saltIcmpReach, icmpReachProb) {
		return nil, 0
	}
	if w.coinH(ah, saltIcmpLoss+uint64(w.scanEpoch), icmpLossProb) {
		return nil, 0
	}
	ident := uint16(payload[4])<<8 | uint16(payload[5])
	seq := uint16(payload[6])<<8 | uint16(payload[7])
	orig := uint32(payload[8])<<24 | uint32(payload[9])<<16 | uint32(payload[10])<<8 | uint32(payload[11])
	var ts uint32
	switch d.Profile.TsQuirk {
	case TsCorrect, TsLittleEndian:
		ms := uint32((probe.MsOfDayUTC(now) + int64(w.hash64(d.V4Addr(), saltIcmpClock)%probe.DayMs)) % probe.DayMs)
		ts = ms
		if d.Profile.TsQuirk == TsLittleEndian {
			ts = ms<<24 | ms>>24 | ms<<8&0xFF0000 | ms>>8&0xFF00
		}
	case TsZero:
		ts = 0
	case TsNonStandard:
		ts = 0x80000000 | uint32(w.hash64(d.V4Addr(), saltIcmpJunk))&0x7FFFFFFF
	}
	return probe.AppendICMPTs(scratch, probe.ICMPTypeTimestampReply, ident, seq, orig, ts, ts), 1
}

const ntpHexDigits = "0123456789abcdef"

// respondNTP answers one NTP mode-6 read-variables request with the vendor's
// daemon version string and a device-stable clock identity (shared across
// interfaces: the daemon has one system clock regardless of ingress).
func (w *World) respondNTP(d *Device, ah uint64, payload []byte, scratch []byte) ([]byte, int) {
	ver := d.Profile.NTPVersion
	if ver == "" {
		return nil, 0
	}
	if len(payload) < 12 || payload[1]&0x80 != 0 || payload[1]&0x1F != probe.NTPOpReadVar {
		return nil, 0
	}
	if !w.coinH(ah, saltNtpReach, ntpReachProb) {
		return nil, 0
	}
	if w.coinH(ah, saltNtpLoss+uint64(w.scanEpoch), ntpLossProb) {
		return nil, 0
	}
	seq := uint16(payload[2])<<8 | uint16(payload[3])
	start := len(scratch)
	wire := probe.AppendNTPControl(scratch, true, seq, nil)
	wire = append(wire, "version=\""...)
	wire = append(wire, ver...)
	wire = append(wire, "\", clock=0x"...)
	clock := w.hash64(d.V4Addr(), saltNtpClock)
	for i := 60; i >= 0; i -= 4 {
		wire = append(wire, ntpHexDigits[clock>>uint(i)&0xF])
	}
	n := len(wire) - start - 12
	wire[start+10] = byte(n >> 8)
	wire[start+11] = byte(n)
	return wire, 1
}
