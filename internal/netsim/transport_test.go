package netsim

import (
	"io"
	"sync"
	"testing"
	"time"

	"snmpv3fp/internal/snmp"
)

func TestTransportRoundTrip(t *testing.T) {
	w := tinyWorld(t)
	w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
	tr := w.NewTransport()
	probe, _ := snmp.EncodeDiscoveryRequest(1, 1)

	// Find a responding address.
	var target *Device
	for _, d := range w.Devices {
		if d.Responds && d.Quirk == QuirkNone && len(d.V4) > 0 && w.RespondsAt(d.V4[0]) &&
			!w.coin(d.V4[0], uint64(0xA110+w.scanEpoch), lossProb) {
			target = d
			break
		}
	}
	if target == nil {
		t.Fatal("no target")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var src any
	var payload []byte
	var at time.Time
	go func() {
		defer wg.Done()
		s, p, a, err := tr.Recv()
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		src, payload, at = s, p, a
	}()
	if err := tr.Send(target.V4[0], probe); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if src != target.V4[0] {
		t.Errorf("src = %v", src)
	}
	if _, err := snmp.ParseDiscoveryResponse(payload); err != nil {
		t.Errorf("payload: %v", err)
	}
	// Receive timestamp is the virtual send time plus a bounded RTT.
	now := w.Clock.Now()
	if at.Before(now) || at.After(now.Add(250*time.Millisecond)) {
		t.Errorf("receive time %v vs now %v", at, now)
	}

	// Close drains to EOF.
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tr.Recv(); err != io.EOF {
		t.Errorf("after close: %v", err)
	}
}

func TestTransportSilentTargets(t *testing.T) {
	w := tinyWorld(t)
	tr := w.NewTransport()
	probe, _ := snmp.EncodeDiscoveryRequest(1, 1)
	// Unallocated address: Send succeeds, nothing is queued.
	if err := tr.Send(w.ScanPrefixes4()[0].Addr(), probe); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if _, _, _, err := tr.Recv(); err != io.EOF {
		t.Error("silent target produced a response")
	}
}

func TestTransportAmplifier(t *testing.T) {
	w := tinyWorld(t)
	w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
	var amp *Device
	for _, d := range w.Devices {
		if d.Quirk == QuirkAmplify && !w.coin(d.V4[0], uint64(0xA110+w.scanEpoch), lossProb) {
			amp = d
			break
		}
	}
	if amp == nil {
		t.Skip("no amplifier escaped the loss coin in this seed")
	}
	tr := w.NewTransport()
	probe, _ := snmp.EncodeDiscoveryRequest(1, 1)

	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			_, _, _, err := tr.Recv()
			if err != nil {
				return
			}
			got++
		}
	}()
	if err := tr.Send(amp.V4[0], probe); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	<-done
	if got != amp.DupCount {
		t.Errorf("amplifier delivered %d packets, want %d", got, amp.DupCount)
	}
	if got < 1000 {
		t.Errorf("amplifier too small: %d", got)
	}
}

func TestScanPrefixesSortedAndDisjoint(t *testing.T) {
	w := tinyWorld(t)
	ps := w.ScanPrefixes4()
	for i := 1; i < len(ps); i++ {
		if !ps[i-1].Addr().Less(ps[i].Addr()) {
			t.Fatal("prefixes not sorted")
		}
		if ps[i-1].Contains(ps[i].Addr()) || ps[i].Contains(ps[i-1].Addr()) {
			t.Fatalf("prefixes overlap: %v %v", ps[i-1], ps[i])
		}
	}
}
