package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/iputil"
	"snmpv3fp/internal/vclock"
)

// quirkDist is a per-class quirk probability table. Probabilities are
// calibrated so the filtering pipeline removes shares comparable to the
// paper's Section 4.4 (drift and mid-campaign reboots dominate; edge
// devices carry most anomalies while router responses stay consistent, as
// the paper's Figure 8 shows).
type quirkDist []struct {
	q Quirk
	p float64
}

var quirksByClass = map[DeviceClass]quirkDist{
	ClassRouter: {
		{QuirkReboot, 0.030},
		{QuirkDrift, 0.020},
		{QuirkZeroBootsTime, 0.005},
		{QuirkMultiResponse, 0.004},
	},
	ClassServer: {
		{QuirkReboot, 0.050},
		{QuirkDrift, 0.060},
		{QuirkZeroBootsTime, 0.020},
		{QuirkMultiResponse, 0.004},
	},
	ClassIoT: {
		{QuirkDrift, 0.30},
		{QuirkZeroBootsTime, 0.15},
		{QuirkReboot, 0.10},
		{QuirkShortEngineID, 0.05},
	},
	ClassCPE: {
		{QuirkDrift, 0.480},
		{QuirkReboot, 0.150},
		{QuirkShortEngineID, 0.065},
		{QuirkChurn, 0.055},
		{QuirkZeroBootsTime, 0.035},
		{QuirkFutureTime, 0.0010},
		{QuirkMissingEngineID, 0.0003},
		{QuirkMultiResponse, 0.006},
	},
}

// v6CPEQuirks reflects the much higher address churn of residential IPv6.
var v6CPEQuirks = quirkDist{
	{QuirkChurn, 0.12},
	{QuirkDrift, 0.05},
	{QuirkReboot, 0.02},
	{QuirkShortEngineID, 0.05},
	{QuirkZeroBootsTime, 0.05},
}

func (qd quirkDist) draw(r *rand.Rand) Quirk {
	u := r.Float64()
	for _, e := range qd {
		if u < e.p {
			return e.q
		}
		u -= e.p
	}
	return QuirkNone
}

type generator struct {
	cfg Config
	r   *rand.Rand
	w   *World

	v4Cursor  uint32
	v6ASIndex uint32

	usedEngineIDs map[string]bool
	// sharedBootEvents creates the cross-device (last reboot, boots) tuple
	// collisions of the paper's Appendix B (co-located power events).
	sharedBootEvents []time.Time
	deviceID         int
}

// Generate builds a deterministic world from cfg.
func Generate(cfg Config) *World {
	g := &generator{
		cfg: cfg,
		r:   rand.New(rand.NewSource(cfg.Seed)),
		w: &World{
			Cfg:        cfg,
			Clock:      vclock.NewVirtual(cfg.StartTime),
			asByNumber: make(map[uint32]*AS),
			byAddr:     make(map[netip.Addr]*Device),
			ptr:        make(map[netip.Addr]string),
		},
		v4Cursor:      iputil.V4ToUint(netip.MustParseAddr("1.0.0.0")),
		usedEngineIDs: make(map[string]bool),
	}
	// Campaigns are scheduled by the harness at StartTime+15d and +21d
	// (mirroring the paper's April 16 and April 22 start dates); churn and
	// mid-campaign reboots flip between them.
	g.w.churnFlip = cfg.StartTime.Add(20 * 24 * time.Hour)
	for i := 0; i < 20; i++ {
		g.sharedBootEvents = append(g.sharedBootEvents, g.bootTime())
	}
	g.genASes()
	g.genRouters()
	g.genServers()
	g.genCPE()
	g.genIoT()
	g.genSpecialPopulations()
	g.genHitlistFiller()
	g.w.buildAddr4Index()
	return g.w
}

// genHitlistFiller adds unallocated IPv6 addresses to the hitlist: targets
// that never answer, as the bulk of the real IPv6 Hitlist does not.
func (g *generator) genHitlistFiller() {
	for i := 0; i < g.cfg.HitlistFiller; i++ {
		a := g.w.ASes[g.r.Intn(len(g.w.ASes))]
		if len(a.V6Prefixes) == 0 {
			continue
		}
		addr := iputil.NthAddr(a.V6Prefixes[0], uint64(g.r.Int63())&0xFFFFFFFFFFFF)
		if _, taken := g.w.byAddr[addr]; taken {
			continue
		}
		g.w.hitlistFiller = append(g.w.hitlistFiller, addr)
	}
}

// pickRegion draws a region from the calibrated weights.
func (g *generator) pickRegion() Region {
	u := g.r.Float64()
	for _, rw := range regionWeights {
		if u < rw.Weight {
			return rw.Region
		}
		u -= rw.Weight
	}
	return RegionOC
}

// pickRouterVendor draws a router vendor for the given region.
func (g *generator) pickRouterVendor(region Region) string {
	total := 0.0
	weights := make([]float64, len(RouterVendorMix))
	for i, vm := range RouterVendorMix {
		w := vm.Weight
		if vm.Vendor == "Huawei" {
			w *= RegionHuaweiShare[region]
		}
		weights[i] = w
		total += w
	}
	u := g.r.Float64() * total
	for i, vm := range RouterVendorMix {
		if u < weights[i] {
			return vm.Vendor
		}
		u -= weights[i]
	}
	return "Cisco"
}

func (g *generator) pickCPEVendor() string {
	u := g.r.Float64()
	for _, vm := range CPEVendorMix {
		if u < vm.Weight {
			return vm.Vendor
		}
		u -= vm.Weight
	}
	return "Thomson"
}

// allocV4Prefix carves the next aligned IPv4 prefix holding at least n
// addresses out of routable space, skipping special-purpose blocks.
func (g *generator) allocV4Prefix(n int) netip.Prefix {
	bits := 32
	for (1 << (32 - bits)) < n {
		bits--
	}
	if bits > 24 {
		bits = 24 // allocate at least a /24 per AS
	}
	size := uint32(1) << (32 - bits)
	for {
		// Align the cursor.
		if g.v4Cursor%size != 0 {
			g.v4Cursor += size - g.v4Cursor%size
		}
		first := iputil.UintToV4(g.v4Cursor)
		last := iputil.UintToV4(g.v4Cursor + size - 1)
		if iputil.IsRoutable(first) && iputil.IsRoutable(last) {
			p := netip.PrefixFrom(first, bits)
			g.v4Cursor += size
			return p
		}
		// Skip forward past the special block.
		g.v4Cursor += size
		if g.v4Cursor < size { // wrapped
			panic("netsim: IPv4 space exhausted")
		}
	}
}

// allocV6Prefix hands each AS its own documentation-free /48.
func (g *generator) allocV6Prefix() netip.Prefix {
	g.v6ASIndex++
	var b [16]byte
	b[0], b[1] = 0x2a, 0x0b
	b[2] = byte(g.v6ASIndex >> 16)
	b[3] = byte(g.v6ASIndex >> 8)
	b[4] = byte(g.v6ASIndex)
	return netip.PrefixFrom(netip.AddrFrom16(b), 48)
}

var rdnsTLDs = []string{"net", "com", "org", "io"}

func (g *generator) genASes() {
	total := g.cfg.TransitASes + g.cfg.EyeballASes + g.cfg.HostingASes
	asn := uint32(100)
	for i := 0; i < total; i++ {
		kind := ASTransit
		switch {
		case i >= g.cfg.TransitASes+g.cfg.EyeballASes:
			kind = ASHosting
		case i >= g.cfg.TransitASes:
			kind = ASEyeball
		}
		region := g.pickRegion()
		a := &AS{
			Number: asn,
			Region: region,
			Kind:   kind,
			Name:   fmt.Sprintf("AS%d-%s", asn, region),
		}
		a.DominantVendor = g.pickRouterVendor(region)
		if g.r.Float64() < 0.70 {
			a.RDNSDomain = fmt.Sprintf("as%d.%s", asn, rdnsTLDs[g.r.Intn(len(rdnsTLDs))])
		}
		g.w.ASes = append(g.w.ASes, a)
		g.w.asByNumber[asn] = a
		asn += uint32(1 + g.r.Intn(40))
	}
}

// dominance samples a per-AS vendor dominance per the paper's Figure 17
// (>80% of ASes at 0.7 or higher, a long thin tail below).
func (g *generator) dominance() float64 {
	u := g.r.Float64()
	switch {
	case u < 0.42:
		return 1.0
	case u < 0.82:
		return 0.70 + 0.30*g.r.Float64()
	case u < 0.95:
		return 0.50 + 0.20*g.r.Float64()
	default:
		return 0.30 + 0.20*g.r.Float64()
	}
}

// interfaceCount samples the number of IPv4 interfaces of a router
// (lognormal, median ~2.7, long tail).
func (g *generator) interfaceCount() int {
	n := int(math.Round(math.Exp(g.r.NormFloat64()*1.25 + 1.55)))
	if n < 1 {
		n = 1
	}
	if n > 500 {
		n = 500
	}
	return n
}

// bootTime samples a last-reboot instant per the paper's Figure 13: ~20%
// within the last month, ~55% within the measurement year, ~78% within one
// year, and a tail back to 2014.
func (g *generator) bootTime() time.Time {
	day := 24 * time.Hour
	// Ages are anchored at the first IPv4 campaign (StartTime + 15 days),
	// the reference the paper's uptime statistics use.
	ref := g.cfg.StartTime.Add(15 * day)
	u := g.r.Float64()
	var age time.Duration
	switch {
	case u < 0.20:
		age = time.Duration(g.r.Float64() * 29 * float64(day))
	case u < 0.55:
		age = time.Duration((29 + g.r.Float64()*76) * float64(day))
	case u < 0.78:
		age = time.Duration((105 + g.r.Float64()*260) * float64(day))
	default:
		age = time.Duration((365 + g.r.ExpFloat64()*700) * float64(day))
		if age > 7*365*day {
			age = 7 * 365 * day
		}
	}
	// Sub-day jitter so boot instants rarely collide by accident, floored
	// at one hour before the anchor so engine times stay positive.
	age += time.Duration(g.r.Int63n(int64(day)))
	if age < time.Hour {
		age = time.Hour
	}
	return ref.Add(-age)
}

func (g *generator) boots() int64 {
	// Geometric-ish: most devices have rebooted a handful of times, some
	// hundreds (the paper's Figure 3 example reports 148).
	b := int64(1 + g.r.Intn(8))
	for g.r.Float64() < 0.35 && b < 400 {
		b += int64(g.r.Intn(40))
	}
	return b
}

// newDevice assembles the shared parts of any device.
func (g *generator) newDevice(class DeviceClass, profile *Profile, asn uint32) *Device {
	g.deviceID++
	d := &Device{
		ID:       g.deviceID,
		Class:    class,
		Profile:  profile,
		ASN:      asn,
		Boots:    g.boots(),
		BootTime: g.bootTime(),
		Responds: g.r.Float64() < g.cfg.DeviceRespondProb,
		ipidBase: uint16(g.r.Intn(1 << 16)),
		ipidRate: 0.5 + g.r.Float64()*30,
	}
	// Per-device clock skew (±150 ppm) and timestamp origin, shared by all
	// of the device's interfaces.
	d.tsSkewPPM = (g.r.Float64() - 0.5) * 300
	d.tsOffset = uint32(g.r.Int63())
	// Busy devices wrap their 16-bit IP-ID counter faster than an alias
	// resolver can sample it -- the paper's Section 7.2 critique of IP-ID
	// techniques. These defeat MIDAR's velocity estimation.
	if g.r.Float64() < 0.35 {
		d.ipidRate = 1500 + g.r.Float64()*25000
	}
	// A tenth of the population reboots on a recurring schedule (patch
	// cycles, flaky power): the signal the longitudinal tracker watches.
	if g.r.Float64() < 0.10 {
		d.RebootPeriod = time.Duration(45+g.r.Intn(355)) * 24 * time.Hour
	}
	// A slice of devices share boot events, producing the small population
	// of cross-device (last reboot, boots) tuple collisions of Appendix B.
	if g.r.Float64() < 0.03 {
		d.BootTime = g.sharedBootEvents[g.r.Intn(len(g.sharedBootEvents))]
		d.Boots = int64(1 + g.r.Intn(3))
	}
	if q, ok := quirksByClass[class]; ok {
		d.Quirk = q.draw(g.r)
	}
	// Churn and mid-measurement reboots flip between the two IPv4
	// campaigns by default; IPv6-only populations override FlipAt to land
	// between the (one day apart) IPv6 campaigns.
	d.FlipAt = g.w.churnFlip
	g.applyQuirkDetails(d)
	return d
}

func (g *generator) applyQuirkDetails(d *Device) {
	switch d.Quirk {
	case QuirkDrift:
		// Enough drift that two campaigns days apart disagree on the last
		// reboot by minutes to hours — well past the 10 s threshold.
		d.DriftRate = 0.0005 + g.r.Float64()*0.02
		if g.r.Float64() < 0.5 {
			d.DriftRate = -d.DriftRate
		}
	case QuirkMultiResponse:
		d.DupCount = 2 + g.r.Intn(4)
	}
}

// assignV4 places n addresses for the device inside the AS prefix.
func (g *generator) assignV4(d *Device, p netip.Prefix, n int) {
	size := iputil.PrefixSize(p)
	for len(d.V4) < n {
		addr := iputil.NthAddr(p, uint64(g.r.Int63n(int64(size))))
		if _, taken := g.w.byAddr[addr]; taken {
			continue
		}
		g.w.byAddr[addr] = d
		d.V4 = append(d.V4, addr)
	}
}

func (g *generator) assignV6(d *Device, p netip.Prefix, n int) {
	for len(d.V6) < n {
		addr := iputil.NthAddr(p, uint64(g.r.Int63())&0xFFFFFFFFFFFF)
		if _, taken := g.w.byAddr[addr]; taken {
			continue
		}
		g.w.byAddr[addr] = d
		d.V6 = append(d.V6, addr)
	}
}

func (g *generator) genRouters() {
	// Power-law responsive-router counts over transit ASes; eyeball and
	// hosting ASes run a handful of routers each.
	counts := make([]int, 0, len(g.w.ASes))
	rank := 1
	for _, a := range g.w.ASes {
		var n int
		switch a.Kind {
		case ASTransit:
			n = int(float64(g.cfg.MaxRoutersPerAS) / math.Pow(float64(rank), g.cfg.RouterZipfExponent))
			rank++
			if n < 1 {
				n = 1
			}
			// Jitter so same-rank worlds differ across seeds.
			n += g.r.Intn(n/4 + 1)
		case ASEyeball:
			n = 2 + g.r.Intn(12)
		case ASHosting:
			n = 1 + g.r.Intn(6)
		}
		counts = append(counts, n)
	}
	// The per-AS budget counts *responsive* routers; inflate to the full
	// population using the respond probability.
	for i, a := range g.w.ASes {
		responsive := counts[i]
		total := int(math.Round(float64(responsive) / g.cfg.DeviceRespondProb))
		if total < responsive {
			total = responsive
		}
		dom := g.dominance()
		// Size the AS's IPv4 prefix for routers plus any edge population.
		addrBudget := total*8 + 64
		if a.Kind == ASEyeball {
			addrBudget += g.cfg.CPEDevices / g.cfg.EyeballASes * 5
		}
		if a.Kind == ASHosting {
			addrBudget += g.cfg.Servers / g.cfg.HostingASes * 2
		}
		p4 := g.allocV4Prefix(addrBudget * g.cfg.PrefixSlack)
		a.V4Prefixes = append(a.V4Prefixes, p4)
		p6 := g.allocV6Prefix()
		a.V6Prefixes = append(a.V6Prefixes, p6)

		mustRespond := responsive
		for ri := 0; ri < total; ri++ {
			vendor := a.DominantVendor
			if g.r.Float64() >= dom {
				vendor = g.pickRouterVendor(a.Region)
			}
			d := g.newDevice(ClassRouter, Profiles[vendor], a.Number)
			// Honour the responsive budget: the first `responsive` routers
			// respond, the rest are dark.
			if mustRespond > 0 {
				d.Responds = true
				mustRespond--
			} else {
				d.Responds = false
			}
			nIf := g.interfaceCount()
			u := g.r.Float64()
			switch {
			case u < g.cfg.V6OnlyRouterProb:
				g.assignV6(d, p6, nIf)
			case u < g.cfg.V6OnlyRouterProb+g.cfg.DualStackRouterProb:
				g.assignV4(d, p4, nIf)
				g.assignV6(d, p6, max(1, nIf/2))
			default:
				g.assignV4(d, p4, nIf)
			}
			g.finishDevice(d, a)
		}
	}
}

func (g *generator) genServers() {
	hosting := g.hostingASes()
	for i := 0; i < g.cfg.Servers; i++ {
		a := hosting[g.r.Intn(len(hosting))]
		d := g.newDevice(ClassServer, Profiles["Net-SNMP"], a.Number)
		d.Responds = true // reachable by construction; density is set by count
		g.assignV4(d, a.V4Prefixes[0], 1+g.r.Intn(2))
		if g.r.Float64() < 0.15 {
			g.assignV6(d, a.V6Prefixes[0], 1)
		}
		g.finishDevice(d, a)
	}
}

func (g *generator) genCPE() {
	eyeball := g.eyeballASes()
	for i := 0; i < g.cfg.CPEDevices; i++ {
		a := eyeball[g.r.Intn(len(eyeball))]
		d := g.newDevice(ClassCPE, Profiles[g.pickCPEVendor()], a.Number)
		d.Responds = true
		// A slice of the edge population holds many addresses (access
		// concentrators, CMTS/DSLAM gateways, NAT pools): these produce the
		// large non-router alias sets behind the paper's 10.6 IPs per
		// non-singleton set.
		nIPs := 1
		if g.r.Float64() < 0.12 {
			nIPs = 2 + int(g.r.ExpFloat64()*20)
			if nIPs > 300 {
				nIPs = 300
			}
		}
		g.assignV4(d, a.V4Prefixes[0], nIPs)
		g.finishDevice(d, a)
	}
	// IPv6 CPE: hitlist-reachable, heavily churning.
	for i := 0; i < g.cfg.V6CPE; i++ {
		a := eyeball[g.r.Intn(len(eyeball))]
		d := g.newDevice(ClassCPE, Profiles[g.pickCPEVendor()], a.Number)
		d.Responds = true
		d.Quirk = v6CPEQuirks.draw(g.r)
		d.FlipAt = g.cfg.StartTime.Add(12*24*time.Hour + 12*time.Hour)
		g.applyQuirkDetails(d)
		d.InHitlist = true
		g.assignV6(d, a.V6Prefixes[0], 1)
		g.finishDevice(d, a)
	}
}

// iotVendors is the exposed-IoT vendor mix (cameras, DVRs, NAS).
var iotVendors = []string{"TP-Link", "D-Link", "ZyXEL", "Ubiquiti", "MikroTik", "Netgear"}

func (g *generator) genIoT() {
	eyeball := g.eyeballASes()
	for i := 0; i < g.cfg.IoTDevices; i++ {
		a := eyeball[g.r.Intn(len(eyeball))]
		d := g.newDevice(ClassIoT, Profiles[iotVendors[g.r.Intn(len(iotVendors))]], a.Number)
		d.Responds = true
		g.assignV4(d, a.V4Prefixes[0], 1)
		g.finishDevice(d, a)
	}
}

func (g *generator) hostingASes() []*AS {
	var out []*AS
	for _, a := range g.w.ASes {
		if a.Kind == ASHosting {
			out = append(out, a)
		}
	}
	return out
}

func (g *generator) eyeballASes() []*AS {
	var out []*AS
	for _, a := range g.w.ASes {
		if a.Kind == ASEyeball {
			out = append(out, a)
		}
	}
	return out
}

// finishDevice gives the device its engine identity, PTR records, and
// dataset memberships, then registers it.
func (g *generator) finishDevice(d *Device, a *AS) {
	d.EngineID = g.genEngineID(d)
	if d.Quirk == QuirkChurn {
		d.AltEngineID = g.genEngineID(d)
		d.AltBoots = g.boots()
		d.AltBootTime = g.bootTime()
	}
	if d.Router() {
		d.InITDK = g.r.Float64() < 0.80
		d.InAtlas = g.r.Float64() < 0.25
		if len(d.V6) > 0 {
			d.InHitlist = g.r.Float64() < 0.70
		}
		if a.RDNSDomain != "" && g.r.Float64() < 0.50 {
			host := fmt.Sprintf("rtr%d.%s%d", d.ID, cityCodes[g.r.Intn(len(cityCodes))], g.r.Intn(10))
			// Not every interface has a PTR record (the paper excludes
			// those), so name-based alias sets stay partial.
			for i, addr := range d.V4 {
				if g.r.Float64() < 0.55 {
					g.w.ptr[addr] = fmt.Sprintf("if%d.%s.%s", i, host, a.RDNSDomain)
				}
			}
			for i, addr := range d.V6 {
				if g.r.Float64() < 0.55 {
					g.w.ptr[addr] = fmt.Sprintf("v6if%d.%s.%s", i, host, a.RDNSDomain)
				}
			}
		}
	}
	g.w.Devices = append(g.w.Devices, d)
}

var cityCodes = []string{"par", "fra", "ams", "lon", "nyc", "sjc", "sin", "hkg", "syd", "gru", "jnb", "waw"}

// genEngineID builds the device's engine ID per its vendor profile, with
// the small malformed populations the filtering pipeline must catch.
func (g *generator) genEngineID(d *Device) []byte {
	if d.Quirk == QuirkShortEngineID {
		id := make([]byte, 1+g.r.Intn(3))
		g.r.Read(id)
		return id
	}
	scheme := g.drawScheme(d.Profile)
	for attempt := 0; ; attempt++ {
		id := g.buildEngineID(d, scheme)
		key := string(id)
		if !g.usedEngineIDs[key] {
			g.usedEngineIDs[key] = true
			return id
		}
		// Deterministic schemes (IPv4/text) can collide; fall back to MAC
		// after a few tries.
		if attempt > 3 {
			scheme = SchemeMAC
		}
	}
}

func (g *generator) drawScheme(p *Profile) EngineIDScheme {
	u := g.r.Float64()
	for _, ws := range p.Schemes {
		if u < ws.Weight {
			return ws.Scheme
		}
		u -= ws.Weight
	}
	return SchemeMAC
}

func (g *generator) buildEngineID(d *Device, scheme EngineIDScheme) []byte {
	ent := d.Profile.Enterprise
	switch scheme {
	case SchemeMAC:
		var mac [6]byte
		if len(d.Profile.OUIs) > 0 && g.r.Float64() > 0.004 {
			o := d.Profile.OUIs[g.r.Intn(len(d.Profile.OUIs))]
			mac[0], mac[1], mac[2] = o[0], o[1], o[2]
		} else {
			// Unregistered OUI (paper: 113k filtered): random locally
			// administered block.
			mac[0] = 0x02
			mac[1] = byte(g.r.Intn(256))
			mac[2] = byte(g.r.Intn(256))
		}
		mac[3], mac[4], mac[5] = byte(g.r.Intn(256)), byte(g.r.Intn(256)), byte(g.r.Intn(256))
		return engineid.NewMAC(ent, mac)
	case SchemeIPv4:
		var a4 [4]byte
		if len(d.V4) > 0 && g.r.Float64() > 0.06 {
			a4 = d.V4[0].As4()
		} else if g.r.Float64() < 0.7 {
			// Unroutable body (paper: 68k filtered): private address.
			a4 = [4]byte{192, 168, byte(g.r.Intn(256)), byte(g.r.Intn(256))}
		} else if len(d.V4) == 0 {
			// IPv6-only device whose engine ID leaks its internal IPv4
			// (the paper's dual-stack signal: 15% of IPv6-scan engine IDs
			// contain IPv4 addresses).
			a4 = [4]byte{100, 127, byte(g.r.Intn(256)), byte(g.r.Intn(256))}
		}
		return engineid.NewIPv4(ent, a4)
	case SchemeIPv6:
		var a16 [16]byte
		if len(d.V6) > 0 {
			a16 = d.V6[0].As16()
		}
		return engineid.NewIPv6(ent, a16)
	case SchemeText:
		return engineid.NewText(ent, fmt.Sprintf("dev%d-as%d", d.ID, d.ASN))
	case SchemeOctets:
		// Fully random: relative Hamming weight centers on 0.5 (Figure 6).
		body := make([]byte, 8)
		g.r.Read(body)
		return engineid.NewOctets(ent, body)
	case SchemeNetSNMP:
		var body [8]byte
		g.r.Read(body[:])
		return engineid.NewNetSNMP(body)
	case SchemeNonConforming:
		// Structured junk with a zero-skewed bit distribution: a format
		// byte followed by a mostly-low-entropy tail (Figure 6's positive
		// skew).
		body := make([]byte, 8)
		body[0] = 0x03
		for i := 1; i < len(body); i++ {
			var b byte
			for bit := 0; bit < 8; bit++ {
				if g.r.Float64() < 0.30 {
					b |= 1 << bit
				}
			}
			body[i] = b
		}
		return engineid.NewNonConforming(body)
	}
	return engineid.NewMAC(ent, [6]byte{2, 0, 0, 1, 2, 3})
}

// genSpecialPopulations overrides engine IDs for the bug and promiscuous
// device groups after normal generation.
func (g *generator) genSpecialPopulations() {
	// The Cisco CSCts87275 bug population: CPE-class Cisco devices all
	// reporting the constant zero-MAC engine ID.
	bugID := []byte{0x80, 0x00, 0x00, 0x09, 0x03, 0, 0, 0, 0, 0, 0, 0}
	eyeball := g.eyeballASes()
	for i := 0; i < g.cfg.BugDevices; i++ {
		a := eyeball[g.r.Intn(len(eyeball))]
		d := g.newDevice(ClassCPE, Profiles["Cisco"], a.Number)
		d.Responds = true
		d.Quirk = QuirkNone
		d.EngineID = bugID
		g.assignV4(d, a.V4Prefixes[0], 1)
		g.w.Devices = append(g.w.Devices, d)
	}
	// Shared engine IDs within one vendor (cloned firmware images): these
	// survive the promiscuity filter, and only the (last reboot, boots)
	// tuple keeps alias resolution from merging them -- the Section 4.3
	// motivation and the Figure 7 top engine IDs whose reboot times span
	// years.
	for grp := 0; grp < g.cfg.SharedIDGroups; grp++ {
		vendor := []string{"Huawei", "Netgear", "Thomson"}[grp%3]
		p := Profiles[vendor]
		var mac [6]byte
		o := p.OUIs[g.r.Intn(len(p.OUIs))]
		mac[0], mac[1], mac[2] = o[0], o[1], o[2]
		mac[3], mac[4], mac[5] = byte(g.r.Intn(256)), byte(g.r.Intn(256)), byte(g.r.Intn(256))
		sharedID := engineid.NewMAC(p.Enterprise, mac)
		for i := 0; i < g.cfg.SharedIDPerGroup; i++ {
			a := eyeball[g.r.Intn(len(eyeball))]
			d := g.newDevice(ClassCPE, p, a.Number)
			d.Responds = true
			d.Quirk = QuirkNone
			d.EngineID = sharedID
			g.assignV4(d, a.V4Prefixes[0], 1)
			g.w.Devices = append(g.w.Devices, d)
		}
	}
	// Promiscuous engine IDs: one value reused by devices of *different*
	// vendors (default configs, cloned images).
	vendors := []string{"Netgear", "Thomson", "Broadcom", "D-Link", "ZyXEL", "TP-Link"}
	for grp := 0; grp < g.cfg.PromiscuousGroups; grp++ {
		body := make([]byte, 8)
		g.r.Read(body)
		for i := 0; i < g.cfg.PromiscuousPerGroup; i++ {
			a := eyeball[g.r.Intn(len(eyeball))]
			vendor := vendors[(grp+i)%len(vendors)]
			d := g.newDevice(ClassCPE, Profiles[vendor], a.Number)
			d.Responds = true
			d.Quirk = QuirkNone
			// Same body under each vendor's own enterprise header: the
			// promiscuity check keys on the engine ID *data* recurring
			// across enterprises.
			d.EngineID = engineid.NewOctets(d.Profile.Enterprise, body)
			g.assignV4(d, a.V4Prefixes[0], 1)
			g.w.Devices = append(g.w.Devices, d)
		}
	}
	// Load-balanced VIPs: one IP fronting a pool of Net-SNMP backends.
	hosting := g.hostingASes()
	for i := 0; i < g.cfg.LoadBalancers; i++ {
		a := hosting[g.r.Intn(len(hosting))]
		d := g.newDevice(ClassServer, Profiles["Net-SNMP"], a.Number)
		d.Responds = true
		d.Quirk = QuirkLoadBalancer
		poolSize := 2 + g.r.Intn(3)
		for p := 0; p < poolSize; p++ {
			var body [8]byte
			g.r.Read(body[:])
			d.Pool = append(d.Pool, PoolIdentity{
				EngineID: engineid.NewNetSNMP(body),
				Boots:    g.boots(),
				BootTime: g.bootTime(),
			})
		}
		d.EngineID = d.Pool[0].EngineID
		g.assignV4(d, a.V4Prefixes[0], 1)
		g.w.Devices = append(g.w.Devices, d)
	}
	// A few amplifiers (Section 8: 48 addresses returned >1000 responses).
	for i := 0; i < 3; i++ {
		a := eyeball[g.r.Intn(len(eyeball))]
		d := g.newDevice(ClassCPE, Profiles["Broadcom"], a.Number)
		d.Responds = true
		d.Quirk = QuirkAmplify
		d.DupCount = 1000 + g.r.Intn(4000)
		d.EngineID = g.genEngineID(d)
		g.assignV4(d, a.V4Prefixes[0], 1)
		g.w.Devices = append(g.w.Devices, d)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
