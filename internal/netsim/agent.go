package netsim

import (
	"net/netip"
	"time"

	"snmpv3fp/internal/snmp"
)

// lossProb is the probability that a responsive address stays silent in any
// one campaign, reproducing the paper's per-scan response instability
// (31.8M and 31.5M responders with a 30.2M overlap: ~2.5% one-sided).
const lossProb = 0.025

// HandleSNMP is the agent side of the simulation: it processes one UDP
// payload addressed to dst at the given instant and returns the datagrams
// the device emits in reply (usually one; duplicates for the multi-response
// and amplification quirks; nil when the address is silent).
//
// The implementation round-trips real wire bytes through internal/snmp, so
// a simulated campaign and a live campaign exercise the same codec.
func (w *World) HandleSNMP(dst netip.Addr, payload []byte, now time.Time) [][]byte {
	if !w.RespondsAt(dst) {
		return nil
	}
	d := w.byAddr[dst]
	// Per-campaign deterministic loss.
	if w.coin(dst, uint64(0xA110+w.scanEpoch), lossProb) {
		return nil
	}
	version, err := snmp.PeekVersion(payload)
	if err != nil {
		return nil
	}
	switch version {
	case snmp.V3:
		return w.handleV3(d, payload, now)
	case snmp.V1, snmp.V2c:
		// Internet-facing community access is modelled as closed: the
		// paper's premise is that v1/v2c scanning cannot elicit responses
		// without guessing the community. (The lab simulator in
		// internal/labsim exercises the open-community path.)
		return nil
	}
	return nil
}

func (w *World) handleV3(d *Device, payload []byte, now time.Time) [][]byte {
	req, err := snmp.DecodeV3(payload)
	if err != nil && err != snmp.ErrEncrypted {
		return nil
	}
	engineID, boots, bootTime := d.activeIdentity(now)
	if d.Quirk == QuirkLoadBalancer && len(d.Pool) > 0 {
		// The VIP hands the flow to a backend; which one depends on the
		// connection (modelled on the request's msgID), so repeated probes
		// cycle through the pool.
		var msgID int64
		if req != nil {
			msgID = req.MsgID
		}
		id := d.Pool[uint64(msgID)%uint64(len(d.Pool))]
		engineID, boots, bootTime = id.EngineID, id.Boots, id.BootTime
	}
	et := d.engineTime(now, bootTime, w.Cfg.StartTime)
	if d.Quirk == QuirkZeroBootsTime {
		boots = 0
	}
	if d.Quirk == QuirkMissingEngineID {
		engineID = nil
	}
	rep := snmp.NewDiscoveryReport(req, engineID, boots, et, uint64(w.hash64(d.V4Addr(), 0xC0)&0xFFFF))
	wire, err := rep.Encode()
	if err != nil {
		return nil
	}
	n := 1
	switch d.Quirk {
	case QuirkMultiResponse, QuirkAmplify:
		if d.DupCount > 0 {
			n = d.DupCount
		}
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = wire
	}
	return out
}

// V4Addr returns the device's first IPv4 address, or its first IPv6 address
// when it has none, as a stable per-device value for hashing.
func (d *Device) V4Addr() netip.Addr {
	if len(d.V4) > 0 {
		return d.V4[0]
	}
	if len(d.V6) > 0 {
		return d.V6[0]
	}
	return netip.Addr{}
}
