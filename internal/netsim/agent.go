package netsim

import (
	"net/netip"
	"time"

	"snmpv3fp/internal/probe"
	"snmpv3fp/internal/snmp"
)

// lossProb is the probability that a responsive address stays silent in any
// one campaign, reproducing the paper's per-scan response instability
// (31.8M and 31.5M responders with a 30.2M overlap: ~2.5% one-sided).
const lossProb = 0.025

// HandleSNMP is the agent side of the simulation: it processes one UDP
// payload addressed to dst at the given instant and returns the datagrams
// the device emits in reply (usually one; duplicates for the multi-response
// and amplification quirks; nil when the address is silent).
//
// It is a compatibility wrapper over respond: every datagram a device emits
// for one probe carries identical bytes, so respond produces the wire once
// with a repeat count, and HandleSNMP fans it out into a slice whose entries
// share one backing array. The transport uses respond directly and copies
// each enqueued datagram into its own pooled buffer instead.
func (w *World) HandleSNMP(dst netip.Addr, payload []byte, now time.Time) [][]byte {
	wire, n := w.respond(dst, w.addrHash(dst), payload, now, nil)
	if n == 0 {
		return nil
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = wire
	}
	return out
}

// respond processes one UDP payload addressed to dst and returns the reply
// wire bytes plus how many copies the device emits (0 when silent). The wire
// is appended to scratch, so a caller that recycles its scratch buffer gets
// an allocation-free reply path; the returned slice aliases scratch's
// backing array and must be copied before scratch is reused.
//
// ah is dst's addrHash state, computed once by the caller and shared by the
// per-probe coins here and in the fault layer.
//
// The implementation round-trips real wire bytes through internal/snmp, so a
// simulated campaign and a live campaign exercise the same codec.
func (w *World) respond(dst netip.Addr, ah uint64, payload []byte, now time.Time, scratch []byte) ([]byte, int) {
	// Inline of RespondsAt with the device lookup shared: respond runs once
	// per probe, and a second byAddr lookup for the device was measurable
	// on the campaign profile.
	d := w.deviceAt(dst)
	if d == nil {
		return nil, 0
	}
	// Non-SNMP probe modules dispatch on the first payload byte (an SNMP
	// message always starts with the BER SEQUENCE tag 0x30, an ICMP
	// timestamp request with type 13, an NTP mode-6 request with 0x16).
	// Each protocol has its own reachability model — ICMP answers from
	// interfaces whose management plane is closed, which is exactly why it
	// adds marginal alias coverage — so the dispatch happens before the
	// SNMP-specific Responds/router-interface/loss coins.
	if len(payload) > 0 {
		switch payload[0] {
		case probe.ICMPTypeTimestamp:
			return w.respondICMPTs(d, ah, payload, now, scratch)
		case probe.NTPControlByte:
			return w.respondNTP(d, ah, payload, scratch)
		}
	}
	if !d.Responds {
		return nil, 0
	}
	if d.Class == ClassRouter && !w.coinH(ah, 0xAC1, w.Cfg.RouterIfaceProb) {
		return nil, 0
	}
	// Per-campaign deterministic loss.
	if w.coinH(ah, uint64(0xA110+w.scanEpoch), lossProb) {
		return nil, 0
	}
	version, err := snmp.PeekVersion(payload)
	if err != nil {
		return nil, 0
	}
	switch version {
	case snmp.V3:
		return w.respondV3(d, payload, now, scratch)
	case snmp.V1, snmp.V2c:
		// Internet-facing community access is modelled as closed: the
		// paper's premise is that v1/v2c scanning cannot elicit responses
		// without guessing the community. (The lab simulator in
		// internal/labsim exercises the open-community path.)
		return nil, 0
	}
	return nil, 0
}

func (w *World) respondV3(d *Device, payload []byte, now time.Time, scratch []byte) ([]byte, int) {
	msgID, reqID, err := snmp.ParseRequestIDs(payload)
	if err != nil && err != snmp.ErrEncrypted {
		return nil, 0
	}
	engineID, boots, bootTime := d.activeIdentity(now)
	if d.Quirk == QuirkLoadBalancer && len(d.Pool) > 0 {
		// The VIP hands the flow to a backend; which one depends on the
		// connection (modelled on the request's msgID), so repeated probes
		// cycle through the pool.
		id := d.Pool[uint64(msgID)%uint64(len(d.Pool))]
		engineID, boots, bootTime = id.EngineID, id.Boots, id.BootTime
	}
	et := d.engineTime(now, bootTime, w.Cfg.StartTime)
	if d.Quirk == QuirkZeroBootsTime {
		boots = 0
	}
	if d.Quirk == QuirkMissingEngineID {
		engineID = nil
	}
	wire := snmp.AppendDiscoveryReport(scratch, msgID, reqID,
		engineID, boots, et, uint64(w.hash64(d.V4Addr(), 0xC0)&0xFFFF))
	n := 1
	switch d.Quirk {
	case QuirkMultiResponse, QuirkAmplify:
		if d.DupCount > 0 {
			n = d.DupCount
		}
	}
	return wire, n
}

// V4Addr returns the device's first IPv4 address, or its first IPv6 address
// when it has none, as a stable per-device value for hashing.
func (d *Device) V4Addr() netip.Addr {
	if len(d.V4) > 0 {
		return d.V4[0]
	}
	if len(d.V6) > 0 {
		return d.V6[0]
	}
	return netip.Addr{}
}
