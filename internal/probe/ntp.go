package probe

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"snmpv3fp/internal/ber"
)

// NTP mode-6 (control) wire format, RFC 1305 appendix B: a 12-byte header
// (LI/VN/mode, response|error|more + opcode, sequence, status, association
// ID, offset, count) followed by count bytes of ASCII variable data. The
// probe is a "read variables" request for association 0; devices answer with
// their system variables, which leak the daemon version string and the
// reference/clock identity — the "Classifying Network Vendors at Internet
// Scale" banner signal, over UDP.
const (
	// NTPControlByte is LI=0, VN=2, Mode=6.
	NTPControlByte = 0x16
	// NTPOpReadVar is the read-variables opcode; responses set the high
	// (response) bit: 0x82.
	NTPOpReadVar = 0x02

	ntpHeaderLen = 12
)

// AppendNTPControl appends one mode-6 message: a request when data is nil,
// a response (opcode | 0x80, count=len(data)) otherwise.
func AppendNTPControl(dst []byte, response bool, seq uint16, data []byte) []byte {
	op := byte(NTPOpReadVar)
	if response {
		op |= 0x80
	}
	n := len(data)
	dst = append(dst,
		NTPControlByte, op,
		byte(seq>>8), byte(seq),
		0, 0, // status
		0, 0, // association ID
		0, 0, // offset
		byte(n>>8), byte(n),
	)
	return append(dst, data...)
}

// ntpModule probes with NTP mode-6 read-variables requests. Two signals come
// back: the version string maps to a vendor, and the clock/reference
// identity is shared across a device's interfaces, so it doubles as an alias
// key (the daemon answers from one system clock regardless of ingress
// interface).
type ntpModule struct{}

func init() { mustRegister(ntpModule{}) }

func (ntpModule) Name() string { return "ntp" }

// Weight sits between ICMP and SNMPv3: clock identities are high-entropy
// strings (no binning collisions), but shared NTP infrastructure can pool
// unrelated devices behind one reference.
func (ntpModule) Weight() float64 { return 0.8 }

func (ntpModule) AppendProbe(dst []byte, seed int64) []byte {
	return AppendNTPControl(dst, false, uint16(seed&0x7FFFFFFF), nil)
}

func (ntpModule) Ident(seed int64) int64 { return int64(uint16(seed & 0x7FFFFFFF)) }

func (ntpModule) ParseInto(ev *Evidence, payload []byte) error {
	ev.reset("ntp")
	if len(payload) < ntpHeaderLen {
		return fmt.Errorf("ntp: %w: %d bytes", ber.ErrTruncated, len(payload))
	}
	if payload[0] != NTPControlByte {
		return fmt.Errorf("ntp: not a mode-6 message (first byte %#x)", payload[0])
	}
	if payload[1]&0x80 == 0 {
		return fmt.Errorf("ntp: not a response (opcode %#x)", payload[1])
	}
	ev.MsgID = int64(uint16(payload[2])<<8 | uint16(payload[3]))
	count := int(payload[10])<<8 | int(payload[11])
	if len(payload) < ntpHeaderLen+count {
		return fmt.Errorf("ntp: %w: count %d beyond payload", ber.ErrTruncated, count)
	}
	data := payload[ntpHeaderLen : ntpHeaderLen+count]
	ev.Version = ntpAttr(data, "version=")
	ev.ClockID = ntpAttr(data, "clock=")
	return nil
}

// ntpAttr extracts the value of one `name=value` or `name="value"` variable
// from mode-6 data, aliasing data's bytes. nil when absent.
func ntpAttr(data []byte, name string) []byte {
	i := bytes.Index(data, []byte(name))
	if i < 0 {
		return nil
	}
	v := data[i+len(name):]
	if len(v) > 0 && v[0] == '"' {
		v = v[1:]
		if end := bytes.IndexByte(v, '"'); end >= 0 {
			return v[:end]
		}
		return v
	}
	if end := bytes.IndexByte(v, ','); end >= 0 {
		return v[:end]
	}
	return v
}

func (ntpModule) AliasKey(ev *Evidence, _ time.Time) (string, bool) {
	if len(ev.ClockID) == 0 {
		return "", false
	}
	return "ntp:" + string(ev.ClockID), true
}

// Vendor maps the advertised version string to a vendor label.
func (ntpModule) Vendor(ev *Evidence) string {
	return VendorFromVersion(string(ev.Version))
}

// versionVendors maps substrings of NTP version strings and SSH banners to
// the vendor labels used by the netsim profiles and the paper's figures.
// Ordered so the first match wins deterministically.
var versionVendors = []struct{ needle, vendor string }{
	{"cisco", "Cisco"},
	{"huawei", "Huawei"},
	{"junos", "Juniper"},
	{"comware", "H3C"},
	{"routeros", "MikroTik"},
	{"rosssh", "MikroTik"},
	{"-eos", "Arista"},
	{"timos", "Nokia SROS"},
	{"zxr10", "ZTE"},
	{"ubiquiti", "Ubiquiti"},
}

// VendorFromVersion maps an NTP version string or SSH banner to a vendor
// label, or "" when it matches none (generic ntpd/OpenSSH builds).
func VendorFromVersion(v string) string {
	v = strings.ToLower(v)
	for _, m := range versionVendors {
		if strings.Contains(v, m.needle) {
			return m.vendor
		}
	}
	return ""
}
