package probe

import (
	"errors"
	"net/netip"
	"sort"
	"time"

	"snmpv3fp/internal/ber"
	"snmpv3fp/internal/scanner"
)

// FloodCap mirrors core.FloodCap for the generic fold: per-source duplicate
// datagrams are tallied in full but parsed only up to this many.
const FloodCap = 64

// Sighting is the merged per-IP result of one protocol's campaign: the
// module's alias key and vendor inference plus the same flood/consistency
// accounting the SNMPv3 fold keeps.
type Sighting struct {
	IP netip.Addr
	// Key is the module's alias key; "" when the evidence carried no
	// alias-usable identity (e.g. a zeroed ICMP clock).
	Key string
	// Vendor is the module's vendor inference, "" when unknown.
	Vendor string
	// ReceivedAt is when the first response packet arrived.
	ReceivedAt time.Time
	// Packets counts response datagrams from this IP.
	Packets int
	// Inconsistent marks IPs whose responses disagreed on the alias key
	// within a single campaign (load balancers, forged duplicates).
	Inconsistent bool
}

// Campaign is the per-IP view of one protocol's scan, the generic analogue
// of core.Campaign (which remains the SNMPv3 fold, byte-identical to the
// pre-module pipeline).
type Campaign struct {
	Protocol string
	// Weight is the module's fusion weight, carried so downstream layers
	// need not look the module up again.
	Weight float64
	ByIP   map[netip.Addr]*Sighting
	// Counters mirror core.Campaign: see that type for semantics.
	Malformed    int
	Truncated    int
	Mismatched   int
	OffPath      int
	Duplicates   int
	FloodCapped  int
	TotalPackets int
	Started      time.Time
	Finished     time.Time
}

// SortedIPs returns the campaign's responsive addresses in address order.
func (c *Campaign) SortedIPs() []netip.Addr {
	out := make([]netip.Addr, 0, len(c.ByIP))
	for ip := range c.ByIP {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Groups buckets the campaign's sightings by alias key: each group is one
// inferred device's interface set, sorted by address. Keyless and
// inconsistent sightings are excluded — evidence that cannot support an
// alias claim must not vote in fusion.
func (c *Campaign) Groups() map[string][]netip.Addr {
	groups := make(map[string][]netip.Addr)
	for ip, s := range c.ByIP {
		if s.Key == "" || s.Inconsistent {
			continue
		}
		groups[s.Key] = append(groups[s.Key], ip)
	}
	for _, ips := range groups {
		sort.Slice(ips, func(i, j int) bool { return ips[i].Less(ips[j]) })
	}
	return groups
}

// Collect folds raw scan responses into per-IP sightings through m's parser,
// with the same hostile-path defenses as the SNMPv3 fold: unparseable
// datagrams count as Malformed (Truncated when cut short in transit),
// responses echoing the wrong campaign identity count as Mismatched and are
// dropped, per-source floods parse only up to FloodCap, and sources whose
// responses disagree on the alias key are flagged Inconsistent.
func Collect(m Module, res *scanner.Result) *Campaign {
	c := &Campaign{
		Protocol: m.Name(),
		Weight:   m.Weight(),
		ByIP:     make(map[netip.Addr]*Sighting, len(res.Responses)),
		OffPath:  int(res.OffPath),
		Started:  res.Started,
		Finished: res.Finished,
	}
	vm, _ := m.(VendorMapper)
	// One evidence struct serves the whole fold; ParseInto resets it per
	// datagram, and the alias key is materialized into the Sighting before
	// the next parse can invalidate aliased payload bytes.
	var ev Evidence
	for i := range res.Responses {
		r := &res.Responses[i]
		c.TotalPackets++
		s, seen := c.ByIP[r.Src]
		if seen {
			c.Duplicates++
			s.Packets++
			if s.Packets > FloodCap {
				c.FloodCapped++
				continue
			}
			err := m.ParseInto(&ev, r.Payload)
			switch {
			case err != nil:
				c.noteMalformed(err)
			case res.ProbeMsgID != 0 && ev.MsgID != res.ProbeMsgID:
				c.Mismatched++
			default:
				if key, _ := m.AliasKey(&ev, r.At); key != s.Key {
					s.Inconsistent = true
				}
			}
			continue
		}
		if err := m.ParseInto(&ev, r.Payload); err != nil {
			c.noteMalformed(err)
			continue
		}
		if res.ProbeMsgID != 0 && ev.MsgID != res.ProbeMsgID {
			c.Mismatched++
			continue
		}
		key, _ := m.AliasKey(&ev, r.At)
		s = &Sighting{IP: r.Src, Key: key, ReceivedAt: r.At, Packets: 1}
		if vm != nil {
			s.Vendor = vm.Vendor(&ev)
		}
		c.ByIP[r.Src] = s
	}
	return c
}

func (c *Campaign) noteMalformed(err error) {
	c.Malformed++
	if errors.Is(err, ber.ErrTruncated) {
		c.Truncated++
	}
}
