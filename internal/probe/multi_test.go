package probe_test

import (
	"context"
	"reflect"
	"sort"
	"testing"
	"time"

	"snmpv3fp/internal/fusion"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/probe"
	"snmpv3fp/internal/scanner"
)

// runMulti runs one multi-protocol sweep over a freshly generated world (a
// fresh world per run keeps the scan epoch identical across runs) and folds
// each protocol's result into a campaign.
func runMulti(t *testing.T, hostile bool, workers int, protocols []string) map[string]*probe.Campaign {
	t.Helper()
	w := netsim.Generate(netsim.TinyConfig(7))
	if hostile {
		w.Cfg.Faults = netsim.FullHostileProfile()
	}
	base := w.Cfg.StartTime.Add(15 * 24 * time.Hour)
	w.Clock.Set(base)
	w.BeginScan()
	targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := scanner.Config{
		Rate: 5000, Batch: 64, Timeout: 8 * time.Second,
		Clock: w.Clock, Seed: 42, Workers: workers, Protocols: protocols,
	}
	results, err := probe.ScanProtocols(context.Background(), func(string) (scanner.Transport, error) {
		w.Clock.Set(base)
		return w.NewTransport(), nil
	}, targets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*probe.Campaign, len(results))
	for name, res := range results {
		m, err := probe.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = probe.Collect(m, res)
	}
	return out
}

// fuseCampaigns builds the fusion report from a sweep's campaigns.
func fuseCampaigns(camps map[string]*probe.Campaign) *fusion.Report {
	names := make([]string, 0, len(camps))
	for name := range camps {
		names = append(names, name)
	}
	sort.Strings(names)
	ev := make([]fusion.ProtocolEvidence, 0, len(names))
	for _, name := range names {
		c := camps[name]
		ev = append(ev, fusion.ProtocolEvidence{Protocol: name, Weight: c.Weight, Groups: c.Groups()})
	}
	return fusion.Fuse(ev)
}

// TestScanProtocolsDeterministic pins the whole multi-protocol pipeline —
// per-protocol campaigns through the hostile fault layer, alias grouping,
// fusion — to one output across worker counts and module orderings.
func TestScanProtocolsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-campaign sweep")
	}
	orderings := [][]string{
		{"snmpv3", "icmp-ts", "ntp"},
		{"ntp", "icmp-ts", "snmpv3"},
	}
	baseCamps := runMulti(t, true, 1, orderings[0])
	baseReport := fuseCampaigns(baseCamps)
	for _, workers := range []int{1, 4, 16} {
		for _, order := range orderings {
			if workers == 1 && reflect.DeepEqual(order, orderings[0]) {
				continue
			}
			camps := runMulti(t, true, workers, order)
			for name, want := range baseCamps {
				got := camps[name]
				if got == nil {
					t.Fatalf("workers=%d order=%v: protocol %s missing", workers, order, name)
				}
				if !reflect.DeepEqual(got.Groups(), want.Groups()) {
					t.Errorf("workers=%d order=%v: %s alias groups differ", workers, order, name)
				}
				if got.TotalPackets != want.TotalPackets || got.Malformed != want.Malformed ||
					got.Truncated != want.Truncated || got.Mismatched != want.Mismatched {
					t.Errorf("workers=%d order=%v: %s counters differ: got %+v",
						workers, order, name, got)
				}
			}
			if rep := fuseCampaigns(camps); !reflect.DeepEqual(rep, baseReport) {
				t.Errorf("workers=%d order=%v: fusion report differs", workers, order)
			}
		}
	}
}

// TestFusionMarginalGain asserts the paper-lineage metric on the stock world:
// protocols that answer where SNMPv3 is silent must contribute alias pairs no
// other protocol proposed.
func TestFusionMarginalGain(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-campaign sweep")
	}
	camps := runMulti(t, false, 4, []string{"snmpv3", "icmp-ts", "ntp"})
	rep := fuseCampaigns(camps)
	for _, name := range []string{"icmp-ts", "ntp"} {
		found := false
		for _, pr := range rep.Protocols {
			if pr.Protocol == name {
				found = true
				if pr.MarginalPairs <= 0 {
					t.Errorf("%s: marginal pairs = %d, want > 0", name, pr.MarginalPairs)
				}
				if pr.Accepted <= 0 {
					t.Errorf("%s: accepted pairs = %d, want > 0", name, pr.Accepted)
				}
			}
		}
		if !found {
			t.Errorf("%s missing from fusion report", name)
		}
	}
	if len(rep.Sets) == 0 || rep.AcceptedPairs == 0 {
		t.Fatalf("empty fusion: %d sets, %d accepted pairs", len(rep.Sets), rep.AcceptedPairs)
	}
}

// TestScanProtocolsHostileAccounting checks the fault layer is visible per
// protocol: under the full hostile profile every module must reject mangled
// and truncated responses rather than silently accepting them.
func TestScanProtocolsHostileAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-campaign sweep")
	}
	camps := runMulti(t, true, 4, []string{"icmp-ts", "ntp"})
	for name, c := range camps {
		if c.TotalPackets == 0 {
			t.Fatalf("%s: no responses under hostile profile", name)
		}
		if c.Mismatched == 0 {
			t.Errorf("%s: no mismatched-identity rejections under probe mangling", name)
		}
		if c.Malformed+c.Truncated == 0 {
			t.Errorf("%s: no malformed/truncated rejections under corruption faults", name)
		}
	}
}
