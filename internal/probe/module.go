// Package probe defines the pluggable probe-module seam: each fingerprinting
// protocol (SNMPv3 discovery, ICMP timestamp, NTP mode 6, ...) is a Module
// that encodes its campaign probe into a caller-owned buffer, parses
// responses into a caller-owned Evidence struct, and derives the per-device
// alias key its evidence supports. The scan engine (internal/scanner) stays
// protocol-agnostic — it sends Module payloads through scanner.ScanProbe —
// and the fusion layer (internal/fusion) combines per-module alias groups by
// Module weight.
//
// Hot-path contract (holds the PR 5 AllocsPerRun gates): AppendProbe appends
// into dst and allocates nothing when dst has capacity; ParseInto writes into
// the caller's Evidence, aliasing payload bytes rather than copying, and
// allocates nothing. Alias-key derivation may allocate (it runs once per
// responding source, not per packet).
package probe

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Evidence is the per-response parse target shared by every module. A module
// fills only its own fields; byte-slice fields alias the response payload
// and are valid only while the payload is (clone before retaining past a
// transport release).
type Evidence struct {
	// Protocol is the name of the module that parsed the response.
	Protocol string
	// MsgID is the echoed campaign identity (SNMPv3 msgID, ICMP
	// identifier+sequence, NTP sequence), compared against
	// scanner.Result.ProbeMsgID to reject forged or corrupted datagrams.
	MsgID int64

	// SNMPv3 discovery fields.
	EngineID   []byte
	Boots      int64
	EngineTime int64

	// ICMP timestamp fields. RemoteMs is the remote clock in milliseconds
	// since midnight UTC, already normalized from the sender's encoding;
	// HasClock is false when the reply carried no usable clock (zeroed or
	// RFC-violating high-bit timestamps). TsEncoding records the observed
	// encoding quirk ("be", "le", "zero", "nonstd") — itself a vendor
	// signal, per "Sundials in the Shade".
	HasClock   bool
	RemoteMs   uint32
	TsEncoding string

	// NTP mode-6 fields: the advertised version string and the device
	// clock/reference identity attribute.
	Version []byte
	ClockID []byte

	// oid is a reusable scratch buffer for SNMPv3 report OID parsing,
	// preserved across reset so repeated parses stay allocation-free.
	oid []uint32
}

// Module is one fingerprinting protocol behind the probe seam.
type Module interface {
	// Name is the registry key and wire-format tag ("snmpv3", "icmp-ts",
	// "ntp").
	Name() string
	// Weight is the module's vote weight in alias fusion: how much an
	// agreement (or conflict) from this protocol counts relative to the
	// others. SNMPv3 engine IDs are the strongest signal and anchor at 1.0.
	Weight() float64
	// AppendProbe appends the campaign probe payload to dst and returns
	// the extended slice. The payload is a pure function of seed, so equal
	// seeds give byte-identical campaigns.
	AppendProbe(dst []byte, seed int64) []byte
	// Ident returns the identity value embedded in AppendProbe(nil, seed),
	// for scanner.ProbeSpec.Ident.
	Ident(seed int64) int64
	// ParseInto parses one response payload into ev, resetting every field
	// the module owns. It returns an error for malformed or truncated
	// payloads; the error text is stable per failure mode so campaign
	// accounting is deterministic.
	ParseInto(ev *Evidence, payload []byte) error
	// AliasKey derives the device-identity string this evidence supports:
	// responses sharing a key are interfaces of one device. receivedAt is
	// the response capture time (clock-offset keys need the local clock).
	// ok is false when the evidence carries no alias-usable identity.
	AliasKey(ev *Evidence, receivedAt time.Time) (key string, ok bool)
}

// VendorMapper is implemented by modules whose evidence maps to a router
// vendor (NTP/SSH version strings, ICMP encoding quirks). Vendor returns ""
// when the evidence does not identify one.
type VendorMapper interface {
	Vendor(ev *Evidence) string
}

// registry holds the built-in and caller-registered modules. Registration
// happens at init time or program start, before campaigns run; the registry
// is not synchronized for concurrent mutation.
var registry = map[string]Module{}

// Register adds m to the module registry. It fails on empty or duplicate
// names so a typo cannot silently shadow a built-in.
func Register(m Module) error {
	name := m.Name()
	if name == "" {
		return fmt.Errorf("probe: module with empty name")
	}
	if _, dup := registry[name]; dup {
		return fmt.Errorf("probe: module %q already registered", name)
	}
	registry[name] = m
	return nil
}

// ErrUnknownProtocol is wrapped by Get for names with no registered module,
// so every layer (fusion queries, the serve endpoints, the CLI flags) can
// classify the failure uniformly.
var ErrUnknownProtocol = errors.New("unknown protocol")

// Get returns the registered module named name.
func Get(name string) (Module, error) {
	m, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("probe: %w %q (have %v)", ErrUnknownProtocol, name, Modules())
	}
	return m, nil
}

// Modules lists the registered module names, sorted.
func Modules() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func mustRegister(m Module) {
	if err := Register(m); err != nil {
		panic(err)
	}
}
