package probe_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"snmpv3fp/internal/probe"
	"snmpv3fp/internal/snmp"
)

var at0 = time.Date(2021, 4, 16, 0, 0, 0, 0, time.UTC)

func mustModule(t *testing.T, name string) probe.Module {
	t.Helper()
	m, err := probe.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegistryBuiltins(t *testing.T) {
	got := probe.Modules()
	for _, want := range []string{"icmp-ts", "ntp", "snmpv3"} {
		found := false
		for _, name := range got {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Modules() = %v, missing %q", got, want)
		}
	}
	if _, err := probe.Get("nope"); !errors.Is(err, probe.ErrUnknownProtocol) {
		t.Errorf("Get(nope) error = %v, want ErrUnknownProtocol", err)
	}
}

// TestSnmpv3ProbeByteIdentity pins the module seam to the pre-module engine:
// the snmpv3 module's probe bytes and campaign identity must match what
// scanner.ScanContext encoded inline before the refactor, for any seed.
func TestSnmpv3ProbeByteIdentity(t *testing.T) {
	m := mustModule(t, "snmpv3")
	for _, seed := range []int64{0, 1, 7, 42, 1 << 40, -3} {
		msgID := seed & 0x7FFFFFFF
		want := snmp.AppendDiscoveryRequest(nil, msgID, (seed*2654435761)&0x7FFFFFFF)
		got := m.AppendProbe(nil, seed)
		if !bytes.Equal(got, want) {
			t.Errorf("seed %d: AppendProbe differs from legacy encoding", seed)
		}
		if id := m.Ident(seed); id != msgID {
			t.Errorf("seed %d: Ident = %d, want %d", seed, id, msgID)
		}
	}
}

// sampleResponse builds one valid response payload per module.
func sampleResponse(t *testing.T, name string) []byte {
	t.Helper()
	switch name {
	case "snmpv3":
		rep, err := snmp.NewDiscoveryReport(snmp.NewDiscoveryRequest(7, 7),
			[]byte{0x80, 0x00, 0x1F, 0x88, 0x04, 1, 2, 3, 4, 5}, 3, 123456, 9).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	case "icmp-ts":
		return probe.AppendICMPTs(nil, probe.ICMPTypeTimestampReply, 0x12, 0x34, 0, 5000, 5000)
	case "ntp":
		return probe.AppendNTPControl(nil, true, 7,
			[]byte(`version="ntpd 4.2.8p10", clock=0xdeadbeef01234567`))
	}
	t.Fatalf("no sample for %s", name)
	return nil
}

// TestHotPathAllocs holds the zero-allocation contract for every module:
// AppendProbe into a reused buffer and ParseInto a warmed Evidence must not
// allocate.
func TestHotPathAllocs(t *testing.T) {
	for _, name := range []string{"snmpv3", "icmp-ts", "ntp"} {
		m := mustModule(t, name)
		buf := m.AppendProbe(nil, 42)
		if n := testing.AllocsPerRun(200, func() {
			buf = m.AppendProbe(buf[:0], 42)
		}); n != 0 {
			t.Errorf("%s: AppendProbe allocates %.1f/op into a reused buffer", name, n)
		}
		payload := sampleResponse(t, name)
		var ev probe.Evidence
		if err := m.ParseInto(&ev, payload); err != nil {
			t.Fatalf("%s: warm parse: %v", name, err)
		}
		if n := testing.AllocsPerRun(200, func() {
			if err := m.ParseInto(&ev, payload); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: ParseInto allocates %.1f/op", name, n)
		}
	}
}

func TestIcmpTsClassification(t *testing.T) {
	m := mustModule(t, "icmp-ts")
	mk := func(trans uint32) []byte {
		return probe.AppendICMPTs(nil, probe.ICMPTypeTimestampReply, 1, 2, 0, trans, trans)
	}
	cases := []struct {
		name     string
		trans    uint32
		encoding string
		hasClock bool
		remoteMs uint32
	}{
		// 5000 ms after midnight, straight big-endian.
		{"be", 5000, "be", true, 5000},
		// 1000 ms little-endian: 0xE8030000 as big-endian is out of range,
		// byte-swapped it is a plausible ms-of-day.
		{"le", 0xE8030000, "le", true, 1000},
		{"zero", 0, "zero", false, 0},
		// High bit set (RFC 792 nonstandard-timestamp flag) and no plausible
		// ms-of-day under either byte order.
		{"nonstd", 0xFFFFFFFF, "nonstd", false, 0},
	}
	for _, tc := range cases {
		var ev probe.Evidence
		if err := m.ParseInto(&ev, mk(tc.trans)); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if ev.TsEncoding != tc.encoding || ev.HasClock != tc.hasClock || ev.RemoteMs != tc.remoteMs {
			t.Errorf("%s: got (%q, %v, %d), want (%q, %v, %d)",
				tc.name, ev.TsEncoding, ev.HasClock, ev.RemoteMs, tc.encoding, tc.hasClock, tc.remoteMs)
		}
		key, ok := m.AliasKey(&ev, at0)
		if ok != tc.hasClock {
			t.Errorf("%s: AliasKey ok = %v, want %v", tc.name, ok, tc.hasClock)
		}
		// at0 is midnight UTC, so the offset is RemoteMs itself; bins are 2 s.
		if tc.name == "be" && key != "ts:be:2" {
			t.Errorf("be: AliasKey = %q, want ts:be:2", key)
		}
	}
	if err := m.ParseInto(&probe.Evidence{}, mk(5000)[:10]); err == nil {
		t.Error("truncated reply parsed without error")
	}
	bad := mk(5000)
	bad[16] ^= 0xFF // corrupt timestamp without fixing the checksum
	if err := m.ParseInto(&probe.Evidence{}, bad); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted reply: err = %v, want checksum failure", err)
	}
}

func TestNTPParseAndVendor(t *testing.T) {
	m := mustModule(t, "ntp")
	payload := probe.AppendNTPControl(nil, true, 77,
		[]byte(`version="ntpd 4.2.0-JUNOS", clock=0x0123456789abcdef`))
	var ev probe.Evidence
	if err := m.ParseInto(&ev, payload); err != nil {
		t.Fatal(err)
	}
	if ev.MsgID != 77 {
		t.Errorf("MsgID = %d, want 77", ev.MsgID)
	}
	if string(ev.Version) != "ntpd 4.2.0-JUNOS" {
		t.Errorf("Version = %q", ev.Version)
	}
	key, ok := m.AliasKey(&ev, at0)
	if !ok || key != "ntp:0x0123456789abcdef" {
		t.Errorf("AliasKey = %q, %v", key, ok)
	}
	vm, isVM := m.(probe.VendorMapper)
	if !isVM {
		t.Fatal("ntp module does not implement VendorMapper")
	}
	if v := vm.Vendor(&ev); v != "Juniper" {
		t.Errorf("Vendor = %q, want Juniper", v)
	}
	// A request (response bit clear) must not parse as evidence.
	if err := m.ParseInto(&ev, probe.AppendNTPControl(nil, false, 77, nil)); err == nil {
		t.Error("mode-6 request parsed as a response")
	}
}

func TestVendorFromVersion(t *testing.T) {
	cases := map[string]string{
		"ntpd 4.1.0-cisco":      "Cisco",
		"SSH-2.0-ROSSSH":        "MikroTik", // SSH banner, same mapper
		"ntpd 4.2.8p12-EOS":     "Arista",
		"ntpd 4.2.0-TiMOS":      "Nokia SROS",
		"OpenSSH_8.9":           "",
		"ntpd 4.2.8p10 generic": "",
	}
	for in, want := range cases {
		if got := probe.VendorFromVersion(in); got != want {
			t.Errorf("VendorFromVersion(%q) = %q, want %q", in, got, want)
		}
	}
}
