package probe

import (
	"context"
	"fmt"

	"snmpv3fp/internal/scanner"
)

// ScanProtocols runs one campaign per protocol named in cfg.Protocols
// (default: snmpv3 only), all over the same target space with the same
// configuration, and returns the per-protocol raw results keyed by module
// name. Each campaign gets a fresh transport from newTransport — the engine
// closes its transport at campaign end — and the caller's factory is where
// simulated runs reset the campaign clock so every protocol scans the same
// instant and the sweep is independent of module ordering.
//
// The SNMPv3 campaign is byte-identical to scanner.ScanContext with the same
// transport, targets and config: same probe bytes, same engine path.
func ScanProtocols(ctx context.Context, newTransport func(protocol string) (scanner.Transport, error), targets scanner.TargetSpace, cfg scanner.Config) (map[string]*scanner.Result, error) {
	protocols := cfg.Protocols
	if len(protocols) == 0 {
		protocols = []string{"snmpv3"}
	}
	out := make(map[string]*scanner.Result, len(protocols))
	for _, name := range protocols {
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("probe: protocol %q listed twice", name)
		}
		m, err := Get(name)
		if err != nil {
			return nil, err
		}
		tr, err := newTransport(name)
		if err != nil {
			return nil, fmt.Errorf("probe: %s transport: %w", name, err)
		}
		spec := scanner.ProbeSpec{Payload: m.AppendProbe(nil, cfg.Seed), Ident: m.Ident(cfg.Seed)}
		res, err := scanner.ScanProbe(ctx, tr, targets, cfg, spec)
		if err != nil {
			return nil, fmt.Errorf("probe: %s campaign: %w", name, err)
		}
		out[name] = res
	}
	return out, nil
}
