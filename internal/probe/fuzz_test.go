package probe_test

import (
	"testing"

	"snmpv3fp/internal/probe"
)

// FuzzIcmpTsParse drives the ICMP timestamp parser with arbitrary payloads:
// it must never panic, and evidence it accepts must satisfy the parser's own
// invariants (reply type, valid checksum, normalized clock in range).
func FuzzIcmpTsParse(f *testing.F) {
	m, err := probe.Get("icmp-ts")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(probe.AppendICMPTs(nil, probe.ICMPTypeTimestampReply, 0x12, 0x34, 0, 5000, 5000))
	f.Add(probe.AppendICMPTs(nil, probe.ICMPTypeTimestamp, 1, 2, 0, 0, 0))
	f.Add([]byte{probe.ICMPTypeTimestampReply, 0})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var ev probe.Evidence
		if err := m.ParseInto(&ev, payload); err != nil {
			return
		}
		if len(payload) < 20 {
			t.Fatalf("accepted %d-byte payload", len(payload))
		}
		if payload[0] != probe.ICMPTypeTimestampReply {
			t.Fatalf("accepted type %d", payload[0])
		}
		if probe.ICMPChecksum(payload[:20]) != 0 {
			t.Fatal("accepted bad checksum")
		}
		if ev.HasClock && ev.RemoteMs >= probe.DayMs {
			t.Fatalf("normalized clock %d out of range", ev.RemoteMs)
		}
	})
}

// FuzzNTPParse drives the mode-6 parser with arbitrary payloads: no panics,
// and accepted evidence aliases in-bounds payload bytes only.
func FuzzNTPParse(f *testing.F) {
	m, err := probe.Get("ntp")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(probe.AppendNTPControl(nil, true, 7,
		[]byte(`version="ntpd 4.2.8p10", clock=0xdeadbeef01234567`)))
	f.Add(probe.AppendNTPControl(nil, false, 7, nil))
	f.Add([]byte{probe.NTPControlByte, 0x82, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var ev probe.Evidence
		if err := m.ParseInto(&ev, payload); err != nil {
			return
		}
		if len(payload) < 12 || payload[0] != probe.NTPControlByte || payload[1]&0x80 == 0 {
			t.Fatalf("accepted invalid header % x", payload[:min(len(payload), 12)])
		}
		count := int(payload[10])<<8 | int(payload[11])
		if len(payload) < 12+count {
			t.Fatalf("accepted count %d beyond %d-byte payload", count, len(payload))
		}
	})
}
