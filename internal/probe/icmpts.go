package probe

import (
	"fmt"
	"strconv"
	"time"

	"snmpv3fp/internal/ber"
)

// ICMP timestamp wire format (RFC 792): 20-byte message, type 13 request /
// type 14 reply, with originate/receive/transmit timestamps in milliseconds
// since midnight UT. Exported constants and the checksum are shared with the
// netsim agents so both sides speak one format.
const (
	ICMPTypeTimestamp      = 13
	ICMPTypeTimestampReply = 14
	// DayMs is the timestamp modulus: milliseconds per day.
	DayMs = 86400000

	icmpTsLen = 20
)

// ICMPChecksum returns the RFC 1071 Internet checksum of b. A message whose
// checksum field is filled correctly sums to 0.
func ICMPChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// AppendICMPTs appends one 20-byte ICMP timestamp message (request or reply,
// per typ) with a valid checksum and returns the extended slice.
func AppendICMPTs(dst []byte, typ byte, ident, seq uint16, orig, recv, trans uint32) []byte {
	base := len(dst)
	dst = append(dst,
		typ, 0, 0, 0, // type, code, checksum placeholder
		byte(ident>>8), byte(ident),
		byte(seq>>8), byte(seq),
		byte(orig>>24), byte(orig>>16), byte(orig>>8), byte(orig),
		byte(recv>>24), byte(recv>>16), byte(recv>>8), byte(recv),
		byte(trans>>24), byte(trans>>16), byte(trans>>8), byte(trans),
	)
	ck := ICMPChecksum(dst[base:])
	dst[base+2] = byte(ck >> 8)
	dst[base+3] = byte(ck)
	return dst
}

// icmpTsModule probes with ICMP timestamp requests and aliases interfaces by
// shared device clock offset — the "Sundials in the Shade" signal: every
// interface of a router answers from the same (usually skewed) clock, so
// (remote ms − local ms) mod day is a device identity. Per-vendor encoding
// quirks (little-endian, zeroed, RFC-violating high-bit values) are decoded
// and recorded as evidence.
type icmpTsModule struct{}

func init() { mustRegister(icmpTsModule{}) }

func (icmpTsModule) Name() string { return "icmp-ts" }

// Weight is below SNMPv3: clock-offset bins can collide across devices, so
// an ICMP agreement is suggestive, not conclusive.
func (icmpTsModule) Weight() float64 { return 0.6 }

// icmpIdent32 packs the campaign identity into the identifier+sequence
// fields: high 16 bits identifier, low 16 bits sequence.
func icmpIdent32(seed int64) uint32 { return uint32(seed & 0x7FFFFFFF) }

func (icmpTsModule) AppendProbe(dst []byte, seed int64) []byte {
	v := icmpIdent32(seed)
	return AppendICMPTs(dst, ICMPTypeTimestamp, uint16(v>>16), uint16(v), 0, 0, 0)
}

func (icmpTsModule) Ident(seed int64) int64 { return int64(icmpIdent32(seed)) }

func (icmpTsModule) ParseInto(ev *Evidence, payload []byte) error {
	ev.reset("icmp-ts")
	if len(payload) < icmpTsLen {
		return fmt.Errorf("icmp-ts: %w: %d bytes", ber.ErrTruncated, len(payload))
	}
	b := payload[:icmpTsLen]
	if b[0] != ICMPTypeTimestampReply {
		return fmt.Errorf("icmp-ts: not a timestamp reply (type %d)", b[0])
	}
	if b[1] != 0 {
		return fmt.Errorf("icmp-ts: nonzero code %d", b[1])
	}
	if ICMPChecksum(b) != 0 {
		return fmt.Errorf("icmp-ts: bad checksum")
	}
	ev.MsgID = int64(uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7]))
	ts := uint32(b[16])<<24 | uint32(b[17])<<16 | uint32(b[18])<<8 | uint32(b[19])
	sw := ts<<24 | ts>>24 | ts<<8&0xFF0000 | ts>>8&0xFF00
	switch {
	case ts == 0:
		ev.TsEncoding = "zero"
	case ts < DayMs:
		ev.HasClock, ev.RemoteMs, ev.TsEncoding = true, ts, "be"
	case sw < DayMs:
		// Byte-swapped value is a plausible ms-of-day: little-endian
		// sender (the classic Linux-derived quirk).
		ev.HasClock, ev.RemoteMs, ev.TsEncoding = true, sw, "le"
	default:
		// RFC 792 says senders that cannot provide ms-since-midnight set
		// the high-order bit; anything else out of range lands here too.
		ev.TsEncoding = "nonstd"
	}
	return nil
}

// icmpBinMs is the clock-offset bin width. RTT plus hostile jitter smear the
// measured offset by well under a second; 2 s bins keep one device's
// interfaces together while separating devices with distinct skews.
const icmpBinMs = 2000

func (icmpTsModule) AliasKey(ev *Evidence, receivedAt time.Time) (string, bool) {
	if !ev.HasClock {
		return "", false
	}
	o := (int64(ev.RemoteMs) - MsOfDayUTC(receivedAt)) % DayMs
	if o < 0 {
		o += DayMs
	}
	return "ts:" + ev.TsEncoding + ":" + strconv.FormatInt(o/icmpBinMs, 10), true
}

// MsOfDayUTC reduces a clock reading to the ICMP timestamp domain:
// milliseconds since midnight UT. Shared with the netsim agents so both
// sides of the simulation use one definition.
func MsOfDayUTC(t time.Time) int64 {
	u := t.UTC()
	h, m, s := u.Clock()
	return (int64(h)*3600+int64(m)*60+int64(s))*1000 + int64(u.Nanosecond()/1e6)
}
