package probe

import (
	"encoding/hex"
	"time"

	"snmpv3fp/internal/snmp"
)

// snmpv3Module is module #1: the paper's SNMPv3 discovery probe, refactored
// behind the module seam with byte-identical output to the pre-module
// engine. AppendProbe/Ident mirror scanner.ScanContext's derivation exactly;
// a test pins the two byte-for-byte.
type snmpv3Module struct{}

func init() { mustRegister(snmpv3Module{}) }

func (snmpv3Module) Name() string { return "snmpv3" }

// Weight anchors the fusion scale: engine IDs are device-unique by design
// (RFC 3411), so SNMPv3 agreement and conflict both count at full strength.
func (snmpv3Module) Weight() float64 { return 1.0 }

func (snmpv3Module) AppendProbe(dst []byte, seed int64) []byte {
	return snmp.AppendDiscoveryRequest(dst, seed&0x7FFFFFFF, (seed*2654435761)&0x7FFFFFFF)
}

func (snmpv3Module) Ident(seed int64) int64 { return seed & 0x7FFFFFFF }

func (snmpv3Module) ParseInto(ev *Evidence, payload []byte) error {
	ev.reset("snmpv3")
	var dr snmp.DiscoveryResponse
	dr.ReportOID = ev.scratchOID()
	if err := snmp.ParseDiscoveryResponseInto(&dr, payload); err != nil {
		return err
	}
	ev.MsgID = dr.MsgID
	ev.EngineID = dr.EngineID
	ev.Boots = dr.EngineBoots
	ev.EngineTime = dr.EngineTime
	ev.oid = dr.ReportOID
	return nil
}

// AliasKey is the hex engine ID: every interface of a device reports the
// same engine, which is exactly the paper's §5 alias signal.
func (snmpv3Module) AliasKey(ev *Evidence, _ time.Time) (string, bool) {
	if len(ev.EngineID) == 0 {
		return "", false
	}
	return hex.EncodeToString(ev.EngineID), true
}

// reset clears every Evidence field before a parse so stale fields from a
// previous response (or another module) never leak through.
func (ev *Evidence) reset(protocol string) {
	oid := ev.oid
	*ev = Evidence{Protocol: protocol, oid: oid}
}

// scratchOID hands ParseInto a reusable OID buffer so repeated parses into
// one Evidence stay allocation-free.
func (ev *Evidence) scratchOID() []uint32 {
	if ev.oid == nil {
		ev.oid = make([]uint32, 0, 16)
	}
	return ev.oid[:0]
}
