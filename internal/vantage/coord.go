package vantage

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"snmpv3fp/internal/core"
	"snmpv3fp/internal/obs"
	"snmpv3fp/internal/scanner"
	"snmpv3fp/internal/store"
)

// CoordConfig tunes a campaign coordinator.
type CoordConfig struct {
	// Spec is the campaign every vantage will reconstruct locally. Its
	// TotalShards is the number of shard leases (default 1).
	Spec CampaignSpec
	// Viewpoints is how many vantage viewpoints scan every shard (default
	// 1). Viewpoint 0 is the reference: only its partials enter the merged
	// campaign, which keeps the merge byte-identical to a single-process
	// scan. Additional viewpoints feed the agreement report.
	Viewpoints int
	// HeartbeatTTL is how long a leased vantage may stay silent before the
	// coordinator declares it dead and re-leases its shard (default 5s).
	// Nodes heartbeat every NodeConfig.HeartbeatEvery, so the TTL should be
	// several multiples of that.
	HeartbeatTTL time.Duration
	// Obs, when non-nil, receives the coordinator's metrics: lease,
	// re-lease, heartbeat and stale-partial counters, a per-vantage leased-
	// shard gauge, and a merge-lag histogram (seconds from a shard's
	// completion to its fold into the merged campaign).
	Obs *obs.Registry
	// Store, when non-nil, receives the merged campaign via Ingest once
	// every shard has committed. The per-IP fold needs every shard (an
	// off-path datagram captured by one shard can share a source with a
	// legitimate response in another), so ingest begins at the merge
	// barrier, then streams batch-by-batch through the store's WAL.
	Store *store.Store
	// Logf, when non-nil, receives coordinator progress lines.
	Logf func(format string, args ...any)
}

func (c *CoordConfig) fill() {
	if c.Spec.TotalShards <= 0 {
		c.Spec.TotalShards = 1
	}
	if c.Viewpoints <= 0 {
		c.Viewpoints = 1
	}
	if c.HeartbeatTTL <= 0 {
		c.HeartbeatTTL = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// ViewpointReport summarizes how one viewpoint's observations agree with
// the reference viewpoint.
type ViewpointReport struct {
	Viewpoint int
	// Responders is how many distinct sources this viewpoint's campaign
	// observed after collection-time validation.
	Responders int
	// SharedWithRef is how many of those the reference viewpoint also
	// observed.
	SharedWithRef int
}

// Outcome is a completed distributed campaign.
type Outcome struct {
	// Merged is the reference-viewpoint scan result, folded from every
	// shard's partials: byte-identical to what a single-process scan of
	// the same spec would return.
	Merged *scanner.Result
	// Campaign is Merged collected into per-IP observations.
	Campaign *core.Campaign
	// Agreement reports cross-viewpoint overlap, reference viewpoint first.
	Agreement []ViewpointReport
	// CampaignSeq is the store's campaign sequence number when a store was
	// attached (0 otherwise).
	CampaignSeq uint64
}

const (
	unitPending = iota
	unitLeased
	unitDone
)

// unit is one leasable work item: one shard seen from one viewpoint.
type unit struct {
	shard     int
	viewpoint int
	state     int
	epoch     uint64 // current lease epoch while leased
	vantage   string
	// responses accumulates the current lease's Partial frames; reset on
	// re-lease so a half-streamed dead lease leaves nothing behind.
	responses []scanner.Response
	result    *scanner.Result
	doneAt    time.Time
}

// coordMetrics is the coordinator's obs surface (nil-safe: a nil registry
// yields unregistered metrics that still count, matching the scanner's
// pattern of metrics never perturbing behavior).
type coordMetrics struct {
	reg           *obs.Registry
	leases        *obs.Counter
	releases      *obs.Counter
	heartbeats    *obs.Counter
	stalePartials *obs.Counter
	mergeLag      *obs.Histogram
	mu            sync.Mutex
	vantageUnits  map[string]*obs.Gauge
}

func newCoordMetrics(reg *obs.Registry) *coordMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	reg.Help("snmpfp_coord_leases_total", "Shard leases granted to vantage nodes, re-leases included.")
	reg.Help("snmpfp_coord_releases_total", "Leases revoked from failed vantage nodes and returned to the pool.")
	reg.Help("snmpfp_coord_heartbeats_total", "Heartbeat frames received from leased vantage nodes.")
	reg.Help("snmpfp_coord_stale_partials_total", "Partial frames discarded because their lease epoch was no longer current.")
	reg.Help("snmpfp_coord_merge_lag_seconds", "Delay between a shard committing and its fold into the merged campaign.")
	reg.Help("snmpfp_coord_vantage_units", "Work units currently leased, per vantage node.")
	return &coordMetrics{
		reg:           reg,
		leases:        reg.Counter("snmpfp_coord_leases_total"),
		releases:      reg.Counter("snmpfp_coord_releases_total"),
		heartbeats:    reg.Counter("snmpfp_coord_heartbeats_total"),
		stalePartials: reg.Counter("snmpfp_coord_stale_partials_total"),
		mergeLag:      reg.Histogram("snmpfp_coord_merge_lag_seconds", obs.ExpBuckets(1e-4, 4, 10)),
		vantageUnits:  make(map[string]*obs.Gauge),
	}
}

// vantageGauge returns the leased-units gauge for one vantage, registering
// it on first sight.
func (m *coordMetrics) vantageGauge(name string) *obs.Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.vantageUnits[name]
	if !ok {
		g = m.reg.Gauge("snmpfp_coord_vantage_units", obs.L("vantage", name))
		m.vantageUnits[name] = g
	}
	return g
}

// Coordinator runs one distributed campaign: it leases (shard, viewpoint)
// units to connected vantage nodes, buffers their streamed partials keyed
// by lease epoch, detects dead nodes by connection failure or heartbeat
// silence and re-leases their units, and — once every unit has committed —
// folds the reference viewpoint's partials into the campaign result.
type Coordinator struct {
	cfg     CoordConfig
	metrics *coordMetrics

	mu        sync.Mutex
	cond      *sync.Cond
	units     []*unit
	remaining int
	nextEpoch uint64
	finished  bool

	done       chan struct{}
	outcome    *Outcome
	outcomeErr error
}

// NewCoordinator builds a coordinator for one campaign.
func NewCoordinator(cfg CoordConfig) *Coordinator {
	cfg.fill()
	c := &Coordinator{
		cfg:     cfg,
		metrics: newCoordMetrics(cfg.Obs),
		done:    make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	// Reference viewpoint first, shards in order: the merge needs viewpoint
	// 0 complete, so it should never starve behind agreement-only work.
	for v := 0; v < cfg.Viewpoints; v++ {
		for s := 0; s < cfg.Spec.TotalShards; s++ {
			c.units = append(c.units, &unit{shard: s, viewpoint: v})
		}
	}
	c.remaining = len(c.units)
	return c
}

// Serve accepts vantage connections on l until the listener is closed,
// handling each in its own goroutine. It returns the accept error (callers
// typically close l once Wait returns).
func (c *Coordinator) Serve(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.handle(conn)
		}()
	}
}

// Done is closed once the campaign has merged.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Wait blocks until the campaign completes or ctx expires, then returns
// the outcome.
func (c *Coordinator) Wait(ctx context.Context) (*Outcome, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.done:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.outcome, c.outcomeErr
}

// handle speaks the coordinator side of the protocol with one vantage.
func (c *Coordinator) handle(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(c.cfg.HeartbeatTTL))
	typ, body, err := ReadFrame(conn)
	if err != nil || typ != frameHello {
		return
	}
	hello, err := ParseHello(body)
	if err != nil {
		return
	}
	if hello.Version != protocolVersion {
		c.cfg.Logf("vantage %q speaks protocol %d, want %d; rejecting", hello.Name, hello.Version, protocolVersion)
		return
	}
	if err := WriteFrame(conn, frameCampaign, AppendCampaignSpec(nil, c.cfg.Spec)); err != nil {
		return
	}
	c.cfg.Logf("vantage %q connected", hello.Name)
	gauge := c.metrics.vantageGauge(hello.Name)

	for {
		u, lease, ok := c.acquireUnit(hello.Name)
		if !ok {
			WriteFrame(conn, frameCampaignDone, nil)
			return
		}
		gauge.Add(1)
		err := c.runLease(conn, u, lease)
		gauge.Add(-1)
		if err != nil {
			c.releaseUnit(u, lease.Epoch)
			c.cfg.Logf("vantage %q lost lease %d (shard %d, viewpoint %d): %v",
				hello.Name, lease.Epoch, lease.Shard, lease.Viewpoint, err)
			return
		}
	}
}

// acquireUnit leases the next pending unit to vantage name, blocking until
// one is available or the campaign finishes.
func (c *Coordinator) acquireUnit(name string) (*unit, Lease, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.remaining == 0 || c.finished {
			return nil, Lease{}, false
		}
		for _, u := range c.units {
			if u.state != unitPending {
				continue
			}
			c.nextEpoch++
			u.state = unitLeased
			u.epoch = c.nextEpoch
			u.vantage = name
			u.responses = nil
			c.metrics.leases.Add(1)
			return u, Lease{Epoch: u.epoch, Shard: u.shard, Viewpoint: u.viewpoint}, true
		}
		c.cond.Wait()
	}
}

// releaseUnit returns a leased unit to the pending pool after its vantage
// failed, retiring the lease epoch so late frames from the dead lease are
// recognizably stale.
func (c *Coordinator) releaseUnit(u *unit, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if u.state == unitLeased && u.epoch == epoch {
		u.state = unitPending
		u.vantage = ""
		u.responses = nil
		c.metrics.releases.Add(1)
		c.cond.Broadcast()
	}
}

// runLease drives one lease to completion: it sends the Lease frame, then
// consumes Heartbeat, Partial and ShardDone frames. Every read carries the
// heartbeat TTL as its deadline, so a vantage that dies without closing its
// socket (SIGKILL leaves the TCP peer silent, not reset) is detected as a
// deadline error and its unit re-leased. Returns nil once the unit
// committed; any error means the unit must be released.
func (c *Coordinator) runLease(conn net.Conn, u *unit, lease Lease) error {
	if err := WriteFrame(conn, frameLease, AppendLease(nil, lease)); err != nil {
		return err
	}
	for {
		conn.SetReadDeadline(time.Now().Add(c.cfg.HeartbeatTTL))
		typ, body, err := ReadFrame(conn)
		if err != nil {
			return err
		}
		switch typ {
		case frameHeartbeat:
			hb, err := ParseHeartbeat(body)
			if err != nil {
				return err
			}
			if hb.Epoch == lease.Epoch {
				c.metrics.heartbeats.Add(1)
			}
		case framePartial:
			p, err := ParsePartial(body)
			if err != nil {
				return err
			}
			if !c.bufferPartial(u, p) {
				c.metrics.stalePartials.Add(1)
			}
		case frameShardDone:
			d, err := ParseShardDone(body)
			if err != nil {
				return err
			}
			if d.Epoch != lease.Epoch {
				c.metrics.stalePartials.Add(1)
				continue
			}
			return c.commitUnit(u, d)
		default:
			return fmt.Errorf("vantage: unexpected frame type %d during lease", typ)
		}
	}
}

// bufferPartial appends a Partial chunk to its unit's buffer, rejecting
// chunks whose epoch is not the unit's current lease.
func (c *Coordinator) bufferPartial(u *unit, p Partial) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if u.state != unitLeased || u.epoch != p.Epoch {
		return false
	}
	u.responses = append(u.responses, p.Responses...)
	return true
}

// commitUnit seals a unit with its ShardDone counters and, when it was the
// last one, finalizes the campaign.
func (c *Coordinator) commitUnit(u *unit, d ShardDone) error {
	c.mu.Lock()
	if u.state != unitLeased || u.epoch != d.Epoch {
		c.mu.Unlock()
		c.metrics.stalePartials.Add(1)
		return errors.New("vantage: shard-done for a retired lease")
	}
	u.state = unitDone
	u.result = &scanner.Result{
		Sent: d.Sent, Retried: d.Retried, OffPath: d.OffPath,
		ProbeMsgID: d.ProbeMsgID, Started: d.Started, Finished: d.Finished,
		Responses: u.responses,
	}
	u.responses = nil
	u.doneAt = time.Now()
	c.remaining--
	last := c.remaining == 0
	c.cfg.Logf("shard %d viewpoint %d committed by %q (%d responses), %d units left",
		u.shard, u.viewpoint, u.vantage, len(u.result.Responses), c.remaining)
	c.mu.Unlock()
	if last {
		c.finalize()
	}
	return nil
}

// finalize folds the committed units into the campaign outcome: merge the
// reference viewpoint's shards, collect per-IP observations, compute the
// cross-viewpoint agreement report, and stream the campaign into the store
// when one is attached. Runs exactly once, on whichever handler committed
// the last unit.
func (c *Coordinator) finalize() {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		return
	}
	c.finished = true
	byViewpoint := make(map[int][]*scanner.Result)
	lags := make([]time.Duration, 0, len(c.units))
	now := time.Now()
	for _, u := range c.units {
		byViewpoint[u.viewpoint] = append(byViewpoint[u.viewpoint], u.result)
		lags = append(lags, now.Sub(u.doneAt))
	}
	c.mu.Unlock()

	for _, lag := range lags {
		c.metrics.mergeLag.Observe(lag.Seconds())
	}
	merged := scanner.MergeResults(byViewpoint[0]...)
	campaign := core.Collect(merged)
	out := &Outcome{Merged: merged, Campaign: campaign}
	var err error
	for v := 0; v < c.cfg.Viewpoints; v++ {
		vc := campaign
		if v != 0 {
			vc = core.Collect(scanner.MergeResults(byViewpoint[v]...))
		}
		shared := 0
		for ip := range vc.ByIP {
			if _, ok := campaign.ByIP[ip]; ok {
				shared++
			}
		}
		out.Agreement = append(out.Agreement, ViewpointReport{
			Viewpoint: v, Responders: len(vc.ByIP), SharedWithRef: shared,
		})
	}
	if c.cfg.Store != nil {
		out.CampaignSeq, err = c.cfg.Store.Ingest(context.Background(), campaign)
		if err != nil {
			err = fmt.Errorf("vantage: store ingest: %w", err)
		}
	}
	c.cfg.Logf("campaign merged: %d responders, %d responses, store seq %d",
		len(campaign.ByIP), len(merged.Responses), out.CampaignSeq)

	c.mu.Lock()
	c.outcome, c.outcomeErr = out, err
	c.cond.Broadcast()
	c.mu.Unlock()
	close(c.done)
}
