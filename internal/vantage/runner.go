package vantage

import (
	"context"
	"fmt"
	"time"

	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/scanner"
)

// Runner executes one lease: a scan of one shard of the campaign's target
// space as seen from one viewpoint. Implementations must be deterministic —
// the same spec and lease must always produce the same Result — because the
// coordinator re-runs leases after vantage failures and the merge invariant
// (DESIGN.md §14) depends on the re-run reproducing the dead vantage's
// bytes exactly.
type Runner interface {
	RunLease(ctx context.Context, spec CampaignSpec, lease Lease) (*scanner.Result, error)
}

// SimRunner runs leases against the deterministic netsim world named by the
// campaign spec. Every lease regenerates the world from its seed, advances
// it to the spec's scan day and epoch, and scans one shard on the virtual
// clock — so a lease's result is a pure function of (spec, lease), no
// matter which vantage runs it or how many leases it ran before.
type SimRunner struct{}

// RunLease implements Runner.
func (SimRunner) RunLease(ctx context.Context, spec CampaignSpec, lease Lease) (*scanner.Result, error) {
	if spec.TotalShards < 1 || lease.Shard < 0 || lease.Shard >= spec.TotalShards {
		return nil, fmt.Errorf("vantage: lease shard %d outside [0,%d)", lease.Shard, spec.TotalShards)
	}
	cfg := netsim.TinyConfig(spec.SimSeed)
	if spec.SimFull {
		cfg = netsim.DefaultConfig(spec.SimSeed)
	}
	w := netsim.Generate(cfg)
	// The fault layer this vantage scans through: the base profile bent by
	// the viewpoint's deterministic path diversity. Viewpoint 0 keeps the
	// base profile and salt 0, which is what makes its partials mergeable
	// byte-identically with a single-process reference scan.
	w.Cfg.Faults = netsim.DeriveVantageProfile(spec.Faults, w.Cfg.Seed, lease.Viewpoint)
	w.SetViewpoint(lease.Viewpoint)
	w.Clock.Set(w.Cfg.StartTime.Add(time.Duration(spec.ScanDay) * 24 * time.Hour))
	for i := 0; i < spec.ScanEpochs; i++ {
		w.BeginScan()
	}
	targets, err := scanner.NewPrefixSpaceShard(w.ScanPrefixes4(), spec.CampaignSeed, lease.Shard, spec.TotalShards)
	if err != nil {
		return nil, err
	}
	return scanner.ScanContext(ctx, w.NewTransport(), targets, scanner.Config{
		Rate:    spec.Rate,
		Batch:   spec.Batch,
		Timeout: spec.Timeout,
		Clock:   w.Clock,
		Seed:    spec.CampaignSeed,
		Workers: spec.Workers,
		Retries: spec.Retries,
	})
}
