package vantage

import (
	"bytes"
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestDistSmoke is the end-to-end distributed smoke: it builds the real
// snmpcoord and snmpscan binaries, runs one coordinator and three vantage
// worker processes over loopback TCP against a seeded netsim world — one
// worker rigged to die mid-campaign — and verifies the merged campaign
// output is byte-identical to a single-process snmpscan of the same seed,
// that every surviving process shuts down cleanly, and that the merged
// campaign landed in the durable store. `make dist-smoke` runs exactly this
// test under the race detector.
func TestDistSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	dir := t.TempDir()

	build := exec.CommandContext(ctx, "go", "build", "-o", dir, "./cmd/snmpcoord", "./cmd/snmpscan")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building binaries: %v\n%s", err, out)
	}
	coordBin := filepath.Join(dir, "snmpcoord")
	scanBin := filepath.Join(dir, "snmpscan")
	addrFile := filepath.Join(dir, "addr.txt")
	storeDir := filepath.Join(dir, "store")

	var coordOut, coordErr bytes.Buffer
	coord := exec.CommandContext(ctx, coordBin,
		"-listen", "127.0.0.1:0", "-addr-file", addrFile, "-store", storeDir,
		"-shards", "4", "-sim-seed", "3", "-sim-hostile", "-quiet",
		"-seed", "42", "-workers", "4", "-retries", "1", "-json")
	coord.Stdout, coord.Stderr = &coordOut, &coordErr
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	var addr string
	for deadline := time.Now().Add(30 * time.Second); ; time.Sleep(50 * time.Millisecond) {
		if b, err := os.ReadFile(addrFile); err == nil && len(bytes.TrimSpace(b)) > 0 {
			addr = string(bytes.TrimSpace(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never published its address; stderr:\n%s", coordErr.String())
		}
	}

	node := func(name string, extra ...string) *exec.Cmd {
		args := append([]string{"-vantage", addr, "-vantage-name", name}, extra...)
		cmd := exec.CommandContext(ctx, scanBin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	v1 := node("v1")
	v2 := node("v2", "-vantage-kill-shards", "1") // dies after its first shard
	v3 := node("v3")
	defer v1.Process.Kill()
	defer v2.Process.Kill()
	defer v3.Process.Kill()

	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v\nstderr:\n%s", err, coordErr.String())
	}
	if err := v1.Wait(); err != nil {
		t.Errorf("vantage v1 did not shut down cleanly: %v", err)
	}
	if err := v3.Wait(); err != nil {
		t.Errorf("vantage v3 did not shut down cleanly: %v", err)
	}
	var exitErr *exec.ExitError
	if err := v2.Wait(); !errors.As(err, &exitErr) {
		t.Errorf("rigged vantage v2 exited %v, want kill-hook failure", err)
	}

	ref := exec.CommandContext(ctx, scanBin,
		"-sim", "-sim-seed", "3", "-sim-hostile",
		"-seed", "42", "-workers", "4", "-retries", "1", "-json")
	refOut, err := ref.Output()
	if err != nil {
		t.Fatalf("single-process reference: %v", err)
	}
	if !bytes.Equal(coordOut.Bytes(), refOut) {
		t.Errorf("merged campaign output differs from single-process scan:\ncoordinator %d bytes, reference %d bytes",
			coordOut.Len(), len(refOut))
	}

	entries, err := os.ReadDir(storeDir)
	if err != nil || len(entries) == 0 {
		t.Errorf("durable store is empty after ingest (err=%v, %d entries)", err, len(entries))
	}
}
