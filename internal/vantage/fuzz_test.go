package vantage

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	"snmpv3fp/internal/scanner"
)

// FuzzWireFrame hammers the frame reader and every body parser with
// arbitrary bytes: no input may panic, over-allocate, or decode into a
// message that does not re-encode to the same bytes (parsers are strict, so
// decode∘encode must be the identity on accepted bodies).
func FuzzWireFrame(f *testing.F) {
	seed := [][]byte{
		AppendHello(nil, Hello{Name: "v0", Version: protocolVersion}),
		AppendCampaignSpec(nil, CampaignSpec{CampaignSeed: 42, SimSeed: 7, Rate: 5000, TotalShards: 4}),
		AppendLease(nil, Lease{Epoch: 3, Shard: 1, Viewpoint: 2}),
		AppendHeartbeat(nil, Heartbeat{Epoch: 9}),
		AppendPartial(nil, Partial{Epoch: 1, Shard: 0, Responses: []scanner.Response{
			{Src: netip.MustParseAddr("192.0.2.1"), Payload: []byte{0x30, 0x03}, At: time.Unix(0, 123).UTC()},
		}}),
		AppendShardDone(nil, ShardDone{Epoch: 2, Shard: 3, Sent: 10,
			Started: time.Unix(5, 0).UTC(), Finished: time.Unix(6, 0).UTC()}),
		{0, 0, 0, 2, frameLease, 0xFF},
		{0xFF, 0xFF, 0xFF, 0xFF, 0, 0},
		{},
	}
	for _, s := range seed {
		for typ := byte(0); typ <= frameCampaignDone+1; typ++ {
			var buf bytes.Buffer
			if WriteFrame(&buf, typ, s) == nil {
				f.Add(buf.Bytes())
			}
		}
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			if err != io.EOF && err != io.ErrUnexpectedEOF &&
				err != ErrFrameTooLarge && err != ErrTruncatedFrame {
				t.Fatalf("ReadFrame: unexpected error class %v", err)
			}
			// Still exercise the parsers on the raw input: a coordinator
			// never sees a body without a valid frame, but the parsers
			// must hold up on any bytes regardless.
			body = data
			typ = 0
			if len(data) > 0 {
				typ = data[0] % (frameCampaignDone + 2)
				body = data[1:]
			}
		}
		switch typ {
		case frameHello:
			if h, err := ParseHello(body); err == nil {
				if !bytes.Equal(AppendHello(nil, h), body) {
					t.Fatal("Hello decode/encode not identity")
				}
			}
		case frameCampaign:
			if spec, err := ParseCampaignSpec(body); err == nil {
				if !bytes.Equal(AppendCampaignSpec(nil, spec), body) {
					t.Fatal("CampaignSpec decode/encode not identity")
				}
			}
		case frameLease:
			if l, err := ParseLease(body); err == nil {
				if !bytes.Equal(AppendLease(nil, l), body) {
					t.Fatal("Lease decode/encode not identity")
				}
			}
		case frameHeartbeat:
			if h, err := ParseHeartbeat(body); err == nil {
				if !bytes.Equal(AppendHeartbeat(nil, h), body) {
					t.Fatal("Heartbeat decode/encode not identity")
				}
			}
		case framePartial:
			if p, err := ParsePartial(body); err == nil {
				if !bytes.Equal(AppendPartial(nil, p), body) {
					t.Fatal("Partial decode/encode not identity")
				}
			}
		case frameShardDone:
			if d, err := ParseShardDone(body); err == nil {
				if !bytes.Equal(AppendShardDone(nil, d), body) {
					t.Fatal("ShardDone decode/encode not identity")
				}
			}
		}
	})
}
