// Package vantage implements distributed multi-vantage scanning: a campaign
// coordinator that leases ZMap-style shard ranges to vantage nodes, vantage
// workers that run the scanner engine over their leased shards and stream
// partial results home, and a deterministic merge layer that folds the
// partials into a campaign byte-identical to a single-process scan of the
// same seed and configuration (DESIGN.md §14).
//
// This file is the wire codec. Frames are length-prefixed so the stream
// self-delimits over TCP: a 4-byte big-endian length covering everything
// after itself, a 1-byte frame type, and a type-specific body. All integers
// are big-endian; times travel as Unix nanoseconds and decode in UTC, which
// round-trips the virtual campaign clock exactly; addresses travel as a
// 1-byte length (4 or 16) plus raw bytes.
package vantage

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net/netip"
	"time"

	"snmpv3fp/internal/bufpool"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/scanner"
)

// Frame types. The numbering is part of the protocol; append, never renumber.
const (
	frameHello        byte = 1 // vantage -> coordinator: introduce yourself
	frameCampaign     byte = 2 // coordinator -> vantage: campaign parameters
	frameLease        byte = 3 // coordinator -> vantage: scan this shard/viewpoint
	frameHeartbeat    byte = 4 // vantage -> coordinator: still alive, still scanning
	framePartial      byte = 5 // vantage -> coordinator: a chunk of captured responses
	frameShardDone    byte = 6 // vantage -> coordinator: lease finished, counters attached
	frameCampaignDone byte = 7 // coordinator -> vantage: no more work, disconnect
)

// protocolVersion is echoed in Hello so a coordinator can reject nodes built
// against an incompatible codec.
const protocolVersion = 1

// maxFrameLen bounds a frame body so a corrupt or hostile length prefix
// cannot make ReadFrame allocate unboundedly. Partial frames chunk at
// partialChunk responses, which keeps well-formed frames far below this.
const maxFrameLen = 8 << 20

// partialChunk is how many responses a vantage packs per Partial frame.
const partialChunk = 512

// framePool recycles frame assembly buffers across the send loop. Frames
// that outgrow a pooled buffer reallocate via append; Put recovers the
// grown buffer for reuse either way.
var framePool = bufpool.New(64, 64<<10)

// Hello introduces a vantage node to the coordinator.
type Hello struct {
	Name    string
	Version uint32
}

// CampaignSpec carries everything a vantage needs to reconstruct the exact
// campaign locally: the simulated world, the fault layer, and the scanner
// configuration. Determinism contract: two vantage processes given the same
// spec and the same lease produce byte-identical partial results.
type CampaignSpec struct {
	// CampaignSeed seeds the target permutation and probe IDs.
	CampaignSeed int64
	// SimSeed seeds the netsim world the vantage scans; SimFull selects the
	// full-size world (netsim.DefaultConfig) over the tiny one.
	SimSeed int64
	SimFull bool
	// ScanDay is how many days after the world's start time the campaign
	// clock begins, and ScanEpochs is how many BeginScan generations have
	// elapsed — together they pin the world to one deterministic epoch.
	ScanDay    int
	ScanEpochs int
	// Scanner engine knobs (scanner.Config).
	Rate    int
	Batch   int
	Workers int
	Retries int
	Timeout time.Duration
	// TotalShards is the campaign's shard count; leases reference shards
	// in [0, TotalShards).
	TotalShards int
	// Faults is the base path-fault profile; each vantage derives its own
	// viewpoint profile from it. Nil means a clean path.
	Faults *netsim.FaultProfile
}

// Lease assigns one unit of work. Epoch is globally unique across the
// campaign and increases every time a unit is (re-)leased, so stale partials
// from a vantage presumed dead are discarded by epoch, not by guesswork.
type Lease struct {
	Epoch     uint64
	Shard     int
	Viewpoint int
}

// Heartbeat reports liveness while a lease is in flight. Epoch names the
// lease being worked (0 when idle).
type Heartbeat struct {
	Epoch uint64
}

// Partial streams a chunk of captured responses for a lease.
type Partial struct {
	Epoch     uint64
	Shard     int
	Viewpoint int
	Responses []scanner.Response
}

// ShardDone closes out a lease with the shard's campaign counters. The
// responses themselves arrived in preceding Partial frames.
type ShardDone struct {
	Epoch      uint64
	Shard      int
	Viewpoint  int
	Sent       uint64
	Retried    uint64
	OffPath    uint64
	ProbeMsgID int64
	Started    time.Time
	Finished   time.Time
}

// ErrFrameTooLarge reports a length prefix beyond maxFrameLen.
var ErrFrameTooLarge = errors.New("vantage: frame exceeds size limit")

// ErrTruncatedFrame reports a body shorter than its fields claim.
var ErrTruncatedFrame = errors.New("vantage: truncated frame body")

// WriteFrame writes one length-prefixed frame. The body buffer is not
// retained.
func WriteFrame(w io.Writer, typ byte, body []byte) error {
	if len(body)+1 > maxFrameLen {
		return ErrFrameTooLarge
	}
	buf := framePool.Get()[:0]
	buf = appendU32(buf, uint32(len(body)+1))
	buf = append(buf, typ)
	buf = append(buf, body...)
	_, err := w.Write(buf)
	framePool.Put(buf)
	return err
}

// ReadFrame reads one frame, returning its type and body. The body is
// freshly allocated and owned by the caller.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	n := u32(hdr[:4])
	if n < 1 {
		return 0, nil, ErrTruncatedFrame
	}
	if n > maxFrameLen {
		return 0, nil, ErrFrameTooLarge
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return 0, nil, frameEOF(err)
	}
	body := make([]byte, n-1)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, frameEOF(err)
	}
	return hdr[4], body, nil
}

// frameEOF converts the io.EOF that ReadFull reports mid-frame into
// ErrUnexpectedEOF: a stream that dies inside a frame is corrupt, not done.
func frameEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// --- primitive append/parse helpers -----------------------------------------

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return appendU32(appendU32(b, uint32(v>>32)), uint32(v))
}

func appendI64(b []byte, v int64) []byte { return appendU64(b, uint64(v)) }

func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

func u32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// wireReader cursors over a frame body, latching the first underflow so
// callers can chain reads and check the error once.
type wireReader struct {
	b   []byte
	bad bool
}

func (r *wireReader) take(n int) []byte {
	if r.bad || len(r.b) < n {
		r.bad = true
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *wireReader) u8() byte {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (r *wireReader) u16() uint16 {
	v := r.take(2)
	if v == nil {
		return 0
	}
	return uint16(v[0])<<8 | uint16(v[1])
}

func (r *wireReader) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return u32(v)
}

func (r *wireReader) u64() uint64 {
	hi := r.u32()
	lo := r.u32()
	return uint64(hi)<<32 | uint64(lo)
}

func (r *wireReader) i64() int64 { return int64(r.u64()) }

func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *wireReader) timeNanos() time.Time {
	n := r.i64()
	if r.bad {
		return time.Time{}
	}
	return time.Unix(0, n).UTC()
}

// done reports whether the body parsed cleanly and completely. Trailing
// bytes are rejected: a frame that says more than its type allows is as
// corrupt as one that says less.
func (r *wireReader) done() error {
	if r.bad {
		return ErrTruncatedFrame
	}
	if len(r.b) != 0 {
		return fmt.Errorf("vantage: %d trailing bytes in frame body", len(r.b))
	}
	return nil
}

func appendAddr(b []byte, a netip.Addr) []byte {
	if a.Is4() {
		v := a.As4()
		b = append(b, 4)
		return append(b, v[:]...)
	}
	v := a.As16()
	b = append(b, 16)
	return append(b, v[:]...)
}

func (r *wireReader) addr() netip.Addr {
	switch n := r.u8(); n {
	case 4:
		v := r.take(4)
		if v == nil {
			return netip.Addr{}
		}
		return netip.AddrFrom4([4]byte(v))
	case 16:
		v := r.take(16)
		if v == nil {
			return netip.Addr{}
		}
		return netip.AddrFrom16([16]byte(v))
	default:
		r.bad = true
		return netip.Addr{}
	}
}

// --- message bodies ---------------------------------------------------------

// AppendHello encodes h into b.
func AppendHello(b []byte, h Hello) []byte {
	if len(h.Name) > math.MaxUint16 {
		h.Name = h.Name[:math.MaxUint16]
	}
	b = appendU32(b, h.Version)
	b = appendU16(b, uint16(len(h.Name)))
	return append(b, h.Name...)
}

// ParseHello decodes a Hello frame body.
func ParseHello(body []byte) (Hello, error) {
	r := wireReader{b: body}
	var h Hello
	h.Version = r.u32()
	n := int(r.u16())
	name := r.take(n)
	if name != nil {
		h.Name = string(name)
	}
	return h, r.done()
}

// AppendCampaignSpec encodes spec into b.
func AppendCampaignSpec(b []byte, spec CampaignSpec) []byte {
	b = appendI64(b, spec.CampaignSeed)
	b = appendI64(b, spec.SimSeed)
	b = appendU32(b, uint32(spec.ScanDay))
	b = appendU32(b, uint32(spec.ScanEpochs))
	b = appendU32(b, uint32(spec.Rate))
	b = appendU32(b, uint32(spec.Batch))
	b = appendU32(b, uint32(spec.Workers))
	b = appendU32(b, uint32(spec.Retries))
	b = appendI64(b, int64(spec.Timeout))
	b = appendU32(b, uint32(spec.TotalShards))
	if spec.SimFull {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	if spec.Faults == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	f := spec.Faults
	b = appendF64(b, f.Loss)
	b = appendF64(b, f.RateLimit)
	b = appendF64(b, f.Mismatch)
	b = appendF64(b, f.Duplicate)
	b = appendU32(b, uint32(f.DupCopies))
	b = appendF64(b, f.Truncate)
	b = appendF64(b, f.Corrupt)
	b = appendF64(b, f.OffPath)
	b = appendI64(b, int64(f.Jitter))
	b = appendF64(b, f.SendErr)
	return b
}

// ParseCampaignSpec decodes a Campaign frame body.
func ParseCampaignSpec(body []byte) (CampaignSpec, error) {
	r := wireReader{b: body}
	var spec CampaignSpec
	spec.CampaignSeed = r.i64()
	spec.SimSeed = r.i64()
	spec.ScanDay = int(r.u32())
	spec.ScanEpochs = int(r.u32())
	spec.Rate = int(r.u32())
	spec.Batch = int(r.u32())
	spec.Workers = int(r.u32())
	spec.Retries = int(r.u32())
	spec.Timeout = time.Duration(r.i64())
	spec.TotalShards = int(r.u32())
	switch r.u8() {
	case 0:
	case 1:
		spec.SimFull = true
	default:
		r.bad = true
	}
	switch r.u8() {
	case 0:
	case 1:
		var f netsim.FaultProfile
		f.Loss = r.f64()
		f.RateLimit = r.f64()
		f.Mismatch = r.f64()
		f.Duplicate = r.f64()
		f.DupCopies = int(r.u32())
		f.Truncate = r.f64()
		f.Corrupt = r.f64()
		f.OffPath = r.f64()
		f.Jitter = time.Duration(r.i64())
		f.SendErr = r.f64()
		if !r.bad {
			spec.Faults = &f
		}
	default:
		r.bad = true
	}
	return spec, r.done()
}

// AppendLease encodes l into b.
func AppendLease(b []byte, l Lease) []byte {
	b = appendU64(b, l.Epoch)
	b = appendU32(b, uint32(l.Shard))
	return appendU32(b, uint32(l.Viewpoint))
}

// ParseLease decodes a Lease frame body.
func ParseLease(body []byte) (Lease, error) {
	r := wireReader{b: body}
	var l Lease
	l.Epoch = r.u64()
	l.Shard = int(r.u32())
	l.Viewpoint = int(r.u32())
	return l, r.done()
}

// AppendHeartbeat encodes h into b.
func AppendHeartbeat(b []byte, h Heartbeat) []byte {
	return appendU64(b, h.Epoch)
}

// ParseHeartbeat decodes a Heartbeat frame body.
func ParseHeartbeat(body []byte) (Heartbeat, error) {
	r := wireReader{b: body}
	h := Heartbeat{Epoch: r.u64()}
	return h, r.done()
}

// AppendPartial encodes p into b. Callers chunk Responses at partialChunk
// so a frame never approaches maxFrameLen.
func AppendPartial(b []byte, p Partial) []byte {
	b = appendU64(b, p.Epoch)
	b = appendU32(b, uint32(p.Shard))
	b = appendU32(b, uint32(p.Viewpoint))
	b = appendU32(b, uint32(len(p.Responses)))
	for _, resp := range p.Responses {
		b = appendI64(b, resp.At.UnixNano())
		b = appendAddr(b, resp.Src)
		b = appendU32(b, uint32(len(resp.Payload)))
		b = append(b, resp.Payload...)
	}
	return b
}

// ParsePartial decodes a Partial frame body. Payloads are copied out of the
// body, so the caller owns them outright.
func ParsePartial(body []byte) (Partial, error) {
	r := wireReader{b: body}
	var p Partial
	p.Epoch = r.u64()
	p.Shard = int(r.u32())
	p.Viewpoint = int(r.u32())
	count := int(r.u32())
	// Each response costs at least 13 bytes on the wire (time + minimal
	// addr + empty payload); reject counts the body cannot possibly hold
	// before allocating for them.
	if r.bad || count > len(r.b)/13 {
		return Partial{}, ErrTruncatedFrame
	}
	if count > 0 {
		p.Responses = make([]scanner.Response, 0, count)
	}
	for i := 0; i < count; i++ {
		var resp scanner.Response
		resp.At = r.timeNanos()
		resp.Src = r.addr()
		n := int(r.u32())
		if r.bad || n > len(r.b) {
			return Partial{}, ErrTruncatedFrame
		}
		if raw := r.take(n); n > 0 {
			resp.Payload = append([]byte(nil), raw...)
		}
		p.Responses = append(p.Responses, resp)
	}
	if err := r.done(); err != nil {
		return Partial{}, err
	}
	return p, nil
}

// AppendShardDone encodes d into b.
func AppendShardDone(b []byte, d ShardDone) []byte {
	b = appendU64(b, d.Epoch)
	b = appendU32(b, uint32(d.Shard))
	b = appendU32(b, uint32(d.Viewpoint))
	b = appendU64(b, d.Sent)
	b = appendU64(b, d.Retried)
	b = appendU64(b, d.OffPath)
	b = appendI64(b, d.ProbeMsgID)
	b = appendI64(b, d.Started.UnixNano())
	return appendI64(b, d.Finished.UnixNano())
}

// ParseShardDone decodes a ShardDone frame body.
func ParseShardDone(body []byte) (ShardDone, error) {
	r := wireReader{b: body}
	var d ShardDone
	d.Epoch = r.u64()
	d.Shard = int(r.u32())
	d.Viewpoint = int(r.u32())
	d.Sent = r.u64()
	d.Retried = r.u64()
	d.OffPath = r.u64()
	d.ProbeMsgID = r.i64()
	d.Started = r.timeNanos()
	d.Finished = r.timeNanos()
	return d, r.done()
}
