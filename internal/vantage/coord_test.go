package vantage

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/obs"
	"snmpv3fp/internal/scanner"
	"snmpv3fp/internal/store"
)

// testSpec is the campaign every distributed test reconstructs: a tiny
// hostile world with retries, multiple workers and every fault knob lit.
func testSpec(totalShards int) CampaignSpec {
	return CampaignSpec{
		CampaignSeed: 42,
		SimSeed:      3,
		ScanDay:      15,
		ScanEpochs:   1,
		Rate:         5000,
		Workers:      4,
		Retries:      1,
		TotalShards:  totalShards,
		Faults:       netsim.FullHostileProfile(),
	}
}

// reference runs the campaign unsharded in-process: the byte-identity
// oracle every distributed merge is held to.
func reference(t *testing.T, spec CampaignSpec) *scanner.Result {
	t.Helper()
	spec.TotalShards = 1
	res, err := SimRunner{}.RunLease(context.Background(), spec, Lease{Shard: 0})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// encodeResult flattens a Result through the wire encoding, giving the
// literal bytes two results must share to count as byte-identical.
func encodeResult(res *scanner.Result) []byte {
	b := AppendShardDone(nil, ShardDone{
		Sent: res.Sent, Retried: res.Retried, OffPath: res.OffPath,
		ProbeMsgID: res.ProbeMsgID, Started: res.Started, Finished: res.Finished,
	})
	return AppendPartial(b, Partial{Responses: res.Responses})
}

// runDistributed runs one campaign over real loopback TCP: a coordinator,
// then the given nodes as goroutines (nodes that die are not restarted —
// include a healthy node when using kill hooks).
func runDistributed(t *testing.T, cfg CoordConfig, nodes []NodeConfig) *Outcome {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	coord := NewCoordinator(cfg)
	go coord.Serve(l)
	for _, nc := range nodes {
		go func(nc NodeConfig) {
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				return
			}
			RunNode(ctx, conn, nc)
		}(nc)
	}
	out, err := coord.Wait(ctx)
	if err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	return out
}

func assertByteIdentical(t *testing.T, want, got *scanner.Result, label string) {
	t.Helper()
	if !bytes.Equal(encodeResult(want), encodeResult(got)) {
		t.Errorf("%s: merged result not byte-identical to single-process reference: "+
			"responses %d vs %d, sent %d vs %d, retried %d vs %d, offpath %d vs %d, window [%v,%v] vs [%v,%v]",
			label, len(want.Responses), len(got.Responses), want.Sent, got.Sent,
			want.Retried, got.Retried, want.OffPath, got.OffPath,
			want.Started, want.Finished, got.Started, got.Finished)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: merged result differs structurally from reference", label)
	}
}

// TestDistributedMatchesSingleProcess is the merge invariant across vantage
// counts: for every shard count the acceptance matrix names, the campaign
// merged from per-vantage partials streamed over real TCP must be
// byte-identical to the unsharded single-process scan.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	want := reference(t, testSpec(1))
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Parallel()
			nodes := []NodeConfig{{Name: "v0"}, {Name: "v1"}}
			if shards == 1 {
				nodes = nodes[:1]
			}
			out := runDistributed(t, CoordConfig{Spec: testSpec(shards)}, nodes)
			assertByteIdentical(t, want, out.Merged, fmt.Sprintf("shards=%d", shards))
			if len(out.Campaign.ByIP) == 0 {
				t.Error("merged campaign observed no responders")
			}
		})
	}
}

// TestReLeaseDeterminism is the acceptance matrix's failure half: one
// vantage dies at every shard boundary and mid-shard (after streaming a
// partial chunk), the coordinator re-leases the orphaned work to the
// surviving vantage, and the merged campaign must still be byte-identical
// to the single-process reference.
func TestReLeaseDeterminism(t *testing.T) {
	const shards = 4
	want := reference(t, testSpec(1))
	kills := []NodeConfig{
		{Name: "dies-mid-shard-1", KillAfterPartials: 1},
		{Name: "dies-mid-shard-2", KillAfterPartials: 2},
	}
	for b := 1; b < shards; b++ {
		kills = append(kills, NodeConfig{Name: fmt.Sprintf("dies-after-shard-%d", b), KillAfterShards: b})
	}
	for _, kill := range kills {
		kill := kill
		t.Run(kill.Name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			reg := obs.NewRegistry()
			coord := NewCoordinator(CoordConfig{Spec: testSpec(shards), Obs: reg})
			go coord.Serve(l)
			// The doomed vantage runs alone first, so its death always
			// orphans leased work; the replacement connects only after the
			// death, exactly like an operator restarting a dead node.
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			if err := RunNode(ctx, conn, kill); err != ErrKilled {
				t.Fatalf("kill hook: got %v, want ErrKilled", err)
			}
			// The coordinator leases work to the dead connection (nobody
			// else is registered) and must notice the death and revoke it;
			// only then does the replacement arrive, so the re-lease path
			// is exercised on every kill point.
			for deadline := time.Now().Add(30 * time.Second); reg.Value("snmpfp_coord_releases_total") < 1; {
				if time.Now().After(deadline) {
					t.Fatal("coordinator never revoked the dead vantage's lease")
				}
				time.Sleep(5 * time.Millisecond)
			}
			go func() {
				conn, err := net.Dial("tcp", l.Addr().String())
				if err != nil {
					return
				}
				RunNode(ctx, conn, NodeConfig{Name: "survivor"})
			}()
			out, err := coord.Wait(ctx)
			if err != nil {
				t.Fatal(err)
			}
			assertByteIdentical(t, want, out.Merged, kill.Name)
		})
	}
}

// TestHeartbeatTimeoutReLease covers the silent-death path: a vantage that
// takes a lease and then hangs without closing its socket (what SIGKILL
// plus a live NAT entry looks like) must be detected by heartbeat silence
// and its shard re-leased.
func TestHeartbeatTimeoutReLease(t *testing.T) {
	want := reference(t, testSpec(2))
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	reg := obs.NewRegistry()
	coord := NewCoordinator(CoordConfig{Spec: testSpec(2), Obs: reg, HeartbeatTTL: 400 * time.Millisecond})
	go coord.Serve(l)

	// The hung vantage: completes the handshake, accepts a lease, then
	// goes silent forever without closing the connection.
	hung, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer hung.Close()
	if err := WriteFrame(hung, frameHello, AppendHello(nil, Hello{Name: "hung", Version: protocolVersion})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // campaign spec, then a lease
		if _, _, err := ReadFrame(hung); err != nil {
			t.Fatal(err)
		}
	}

	go func() {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return
		}
		RunNode(ctx, conn, NodeConfig{Name: "healthy", HeartbeatEvery: 100 * time.Millisecond})
	}()
	out, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, want, out.Merged, "heartbeat-timeout")
	if reg.Value("snmpfp_coord_releases_total") < 1 {
		t.Error("heartbeat silence never triggered a re-lease")
	}
	if reg.Value("snmpfp_coord_heartbeats_total") < 1 {
		t.Error("no heartbeats recorded from the healthy vantage")
	}
}

// TestViewpointAgreement runs a two-viewpoint campaign: the merged result
// must stay pinned to the reference viewpoint while the agreement report
// captures the second viewpoint's overlap.
func TestViewpointAgreement(t *testing.T) {
	want := reference(t, testSpec(2))
	out := runDistributed(t,
		CoordConfig{Spec: testSpec(2), Viewpoints: 2},
		[]NodeConfig{{Name: "v0"}, {Name: "v1"}})
	assertByteIdentical(t, want, out.Merged, "viewpoints=2")
	if len(out.Agreement) != 2 {
		t.Fatalf("agreement report has %d entries, want 2", len(out.Agreement))
	}
	ref := out.Agreement[0]
	if ref.Viewpoint != 0 || ref.Responders != len(out.Campaign.ByIP) || ref.SharedWithRef != ref.Responders {
		t.Errorf("reference viewpoint report inconsistent: %+v vs %d responders", ref, len(out.Campaign.ByIP))
	}
	alt := out.Agreement[1]
	if alt.Responders == 0 {
		t.Error("second viewpoint observed nothing")
	}
	if alt.SharedWithRef > alt.Responders {
		t.Errorf("second viewpoint shares %d of %d responders", alt.SharedWithRef, alt.Responders)
	}
}

// TestLateVantageGetsCampaignDone: a vantage connecting after the campaign
// finished must be handed the spec and an immediate CampaignDone, not a
// hang.
func TestLateVantageGetsCampaignDone(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	coord := NewCoordinator(CoordConfig{Spec: testSpec(1)})
	go coord.Serve(l)
	go func() {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return
		}
		RunNode(ctx, conn, NodeConfig{Name: "worker"})
	}()
	if _, err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := RunNode(ctx, conn, NodeConfig{Name: "late"}); err != nil {
		t.Fatalf("late vantage: %v", err)
	}
}

// TestCoordinatorStoreIngest attaches a durable store: the merged campaign
// must stream into it at the merge barrier, and reopening the directory
// must recover every observation — distributed scans end in the same
// durable state a local scan would.
func TestCoordinatorStoreIngest(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	out := runDistributed(t,
		CoordConfig{Spec: testSpec(2), Store: st},
		[]NodeConfig{{Name: "v0"}, {Name: "v1"}})
	if out.CampaignSeq == 0 {
		t.Fatal("campaign was never ingested into the store")
	}
	stats := st.Snapshot().Stats()
	if got, want := int(stats.Ingested), len(out.Campaign.ByIP); got != want {
		t.Errorf("store ingested %d samples, campaign has %d responders", got, want)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, want := int(re.Snapshot().Stats().Ingested), len(out.Campaign.ByIP); got != want {
		t.Errorf("recovered store has %d samples, campaign has %d responders", got, want)
	}
}
