package vantage

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"snmpv3fp/internal/scanner"
)

// ErrKilled is returned by RunNode when a configured kill hook fired: the
// node dropped its connection mid-campaign on purpose, simulating a vantage
// process dying. Test-only behavior; production nodes never set the hooks.
var ErrKilled = errors.New("vantage: kill hook fired")

// NodeConfig tunes one vantage worker.
type NodeConfig struct {
	// Name identifies the node to the coordinator (logs and metrics only;
	// correctness never depends on it).
	Name string
	// Runner executes leases; defaults to SimRunner.
	Runner Runner
	// HeartbeatEvery is the liveness interval while a lease is running
	// (default 500ms). It must be comfortably below the coordinator's
	// heartbeat TTL.
	HeartbeatEvery time.Duration
	// KillAfterShards, when > 0, makes the node sever its connection
	// without warning immediately after completing that many leases.
	// KillAfterPartials does the same after writing that many Partial
	// frames, so the death lands mid-shard with responses already
	// streamed. Kill hooks exist for the re-lease determinism tests.
	KillAfterShards   int
	KillAfterPartials int
}

func (c *NodeConfig) fill() {
	if c.Runner == nil {
		c.Runner = SimRunner{}
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.Name == "" {
		c.Name = "vantage"
	}
}

// nodeConn serializes frame writes: the heartbeat goroutine and the lease
// loop share one connection.
type nodeConn struct {
	mu   sync.Mutex
	conn net.Conn
}

func (c *nodeConn) write(typ byte, body []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return WriteFrame(c.conn, typ, body)
}

// RunNode speaks the vantage side of the coordinator protocol over conn:
// hello, receive the campaign spec, then loop — receive a lease, scan it
// with the configured Runner while heartbeating, stream the captured
// responses back in Partial chunks, close the lease with ShardDone — until
// the coordinator sends CampaignDone. Cancelling ctx severs the connection
// and returns ctx's error.
//
// RunNode always closes conn before returning.
func RunNode(ctx context.Context, conn net.Conn, cfg NodeConfig) error {
	cfg.fill()
	defer conn.Close()

	// A cancelled context must unblock the read loop, which otherwise sits
	// in ReadFrame indefinitely between leases.
	watchdog := make(chan struct{})
	defer close(watchdog)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchdog:
		}
	}()

	nc := &nodeConn{conn: conn}
	if err := nc.write(frameHello, AppendHello(nil, Hello{Name: cfg.Name, Version: protocolVersion})); err != nil {
		return err
	}
	typ, body, err := ReadFrame(conn)
	if err != nil {
		return err
	}
	if typ != frameCampaign {
		return fmt.Errorf("vantage: expected campaign frame, got type %d", typ)
	}
	spec, err := ParseCampaignSpec(body)
	if err != nil {
		return err
	}

	shardsDone, partialsSent := 0, 0
	for {
		typ, body, err := ReadFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		switch typ {
		case frameCampaignDone:
			return nil
		case frameLease:
			lease, err := ParseLease(body)
			if err != nil {
				return err
			}
			res, err := runLeaseWithHeartbeat(ctx, nc, cfg, spec, lease)
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return err
			}
			// Stream the shard's responses home in bounded chunks, then
			// close the lease with its counters. The kill hooks sever the
			// connection at exactly these frame boundaries so the tests can
			// place a death before, between, and after partial chunks.
			for off := 0; off < len(res.Responses) || off == 0; off += partialChunk {
				end := off + partialChunk
				if end > len(res.Responses) {
					end = len(res.Responses)
				}
				p := Partial{Epoch: lease.Epoch, Shard: lease.Shard, Viewpoint: lease.Viewpoint,
					Responses: res.Responses[off:end]}
				if err := nc.write(framePartial, AppendPartial(nil, p)); err != nil {
					return err
				}
				partialsSent++
				if cfg.KillAfterPartials > 0 && partialsSent >= cfg.KillAfterPartials {
					conn.Close()
					return ErrKilled
				}
				if end == len(res.Responses) {
					break
				}
			}
			d := ShardDone{
				Epoch: lease.Epoch, Shard: lease.Shard, Viewpoint: lease.Viewpoint,
				Sent: res.Sent, Retried: res.Retried, OffPath: res.OffPath,
				ProbeMsgID: res.ProbeMsgID, Started: res.Started, Finished: res.Finished,
			}
			if err := nc.write(frameShardDone, AppendShardDone(nil, d)); err != nil {
				return err
			}
			shardsDone++
			if cfg.KillAfterShards > 0 && shardsDone >= cfg.KillAfterShards {
				conn.Close()
				return ErrKilled
			}
		default:
			return fmt.Errorf("vantage: unexpected frame type %d from coordinator", typ)
		}
	}
}

// runLeaseWithHeartbeat runs one lease while a sibling goroutine heartbeats
// the coordinator, and joins the heartbeater before returning so no
// heartbeat can interleave with the Partial frames that follow.
func runLeaseWithHeartbeat(ctx context.Context, nc *nodeConn, cfg NodeConfig, spec CampaignSpec, lease Lease) (*scanner.Result, error) {
	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				// A failed heartbeat means the connection is gone; the
				// lease loop will notice on its next write.
				if nc.write(frameHeartbeat, AppendHeartbeat(nil, Heartbeat{Epoch: lease.Epoch})) != nil {
					return
				}
			}
		}
	}()
	res, err := cfg.Runner.RunLease(ctx, spec, lease)
	stopHB()
	hbWG.Wait()
	return res, err
}
