package vantage

import (
	"bytes"
	"io"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/scanner"
)

func roundTrip(t *testing.T, typ byte, body []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, typ, body); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	gotTyp, gotBody, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if gotTyp != typ {
		t.Fatalf("frame type %d round-tripped as %d", typ, gotTyp)
	}
	return gotBody
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Name: "vantage-03", Version: protocolVersion}
	got, err := ParseHello(roundTrip(t, frameHello, AppendHello(nil, h)))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v want %+v", got, h)
	}
}

func TestCampaignSpecRoundTrip(t *testing.T) {
	specs := []CampaignSpec{
		{
			CampaignSeed: 42, SimSeed: -7, ScanDay: 15, ScanEpochs: 2,
			Rate: 5000, Batch: 64, Workers: 4, Retries: 2,
			Timeout: 8 * time.Second, TotalShards: 8,
			Faults: netsim.FullHostileProfile(),
		},
		{CampaignSeed: -1, SimSeed: 3, TotalShards: 1}, // clean path, nil faults
	}
	for _, spec := range specs {
		got, err := ParseCampaignSpec(roundTrip(t, frameCampaign, AppendCampaignSpec(nil, spec)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, spec) {
			t.Fatalf("got %+v want %+v", got, spec)
		}
	}
}

func TestLeaseHeartbeatRoundTrip(t *testing.T) {
	l := Lease{Epoch: 1 << 40, Shard: 3, Viewpoint: 2}
	gotL, err := ParseLease(roundTrip(t, frameLease, AppendLease(nil, l)))
	if err != nil {
		t.Fatal(err)
	}
	if gotL != l {
		t.Fatalf("got %+v want %+v", gotL, l)
	}
	h := Heartbeat{Epoch: 99}
	gotH, err := ParseHeartbeat(roundTrip(t, frameHeartbeat, AppendHeartbeat(nil, h)))
	if err != nil {
		t.Fatal(err)
	}
	if gotH != h {
		t.Fatalf("got %+v want %+v", gotH, h)
	}
}

func TestPartialRoundTrip(t *testing.T) {
	at := time.Date(2021, 4, 16, 3, 2, 1, 500, time.UTC)
	p := Partial{
		Epoch: 7, Shard: 1, Viewpoint: 0,
		Responses: []scanner.Response{
			{Src: netip.MustParseAddr("192.0.2.9"), Payload: []byte{0x30, 0x82, 0x01}, At: at},
			{Src: netip.MustParseAddr("2001:db8::5"), Payload: nil, At: at.Add(time.Millisecond)},
			{Src: netip.MustParseAddr("198.51.100.1"), Payload: []byte{}, At: at.Add(time.Second)},
		},
	}
	got, err := ParsePartial(roundTrip(t, framePartial, AppendPartial(nil, p)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != p.Epoch || got.Shard != p.Shard || got.Viewpoint != p.Viewpoint {
		t.Fatalf("header got %+v want %+v", got, p)
	}
	if len(got.Responses) != len(p.Responses) {
		t.Fatalf("got %d responses, want %d", len(got.Responses), len(p.Responses))
	}
	for i := range p.Responses {
		want, have := p.Responses[i], got.Responses[i]
		if have.Src != want.Src || !have.At.Equal(want.At) || !bytes.Equal(have.Payload, want.Payload) {
			t.Errorf("response %d: got %+v want %+v", i, have, want)
		}
	}
	// An empty partial must round-trip too (a shard can capture nothing).
	empty, err := ParsePartial(roundTrip(t, framePartial, AppendPartial(nil, Partial{Epoch: 1})))
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Responses) != 0 {
		t.Fatalf("empty partial decoded %d responses", len(empty.Responses))
	}
}

func TestShardDoneRoundTrip(t *testing.T) {
	d := ShardDone{
		Epoch: 12, Shard: 5, Viewpoint: 1,
		Sent: 1000, Retried: 30, OffPath: 4, ProbeMsgID: 42,
		Started:  time.Date(2021, 4, 16, 0, 0, 0, 0, time.UTC),
		Finished: time.Date(2021, 4, 16, 0, 5, 0, 0, time.UTC),
	}
	got, err := ParseShardDone(roundTrip(t, frameShardDone, AppendShardDone(nil, d)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("got %+v want %+v", got, d)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, frameHello})
	if _, _, err := ReadFrame(&buf); err != ErrFrameTooLarge {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncatedStream(t *testing.T) {
	// A frame header promising more bytes than the stream delivers must
	// surface as unexpected EOF, not a clean end of stream.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, framePartial, AppendPartial(nil, Partial{Epoch: 3})); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", cut)
		}
		if cut >= 4 && err != io.ErrUnexpectedEOF {
			t.Fatalf("truncation at %d: got %v, want ErrUnexpectedEOF", cut, err)
		}
	}
	// Zero-length prefix (no type byte) is also invalid.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err != ErrTruncatedFrame {
		t.Fatalf("zero-length frame: got %v, want ErrTruncatedFrame", err)
	}
}

func TestParseRejectsTrailingBytes(t *testing.T) {
	body := AppendLease(nil, Lease{Epoch: 1, Shard: 0, Viewpoint: 0})
	if _, err := ParseLease(append(body, 0xAB)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestParsePartialBogusCount(t *testing.T) {
	// A count field larger than the body could possibly hold must be
	// rejected before any allocation proportional to it.
	body := appendU64(nil, 1)
	body = appendU32(body, 0)
	body = appendU32(body, 0)
	body = appendU32(body, 0xFFFFFFF0)
	if _, err := ParsePartial(body); err == nil {
		t.Fatal("bogus response count accepted")
	}
}
