// Package benchsuite defines the repo's continuous performance benchmarks
// as plain functions over *testing.B, so the same bodies run both as
// `go test -bench` benchmarks (bench/bench_test.go) and programmatically
// through testing.Benchmark in cmd/benchjson, which writes the root
// BENCH_scan.json / BENCH_store.json / BENCH_serve.json baselines.
//
// Every benchmark reports allocations; the codec benchmarks are the ones
// the zero-allocation regression tests (internal/ber, internal/snmp,
// internal/scanner, bench/) pin at 0 allocs/op.
package benchsuite

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"snmpv3fp/internal/core"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/probe"
	"snmpv3fp/internal/scanner"
	"snmpv3fp/internal/serve"
	"snmpv3fp/internal/snmp"
	"snmpv3fp/internal/store"
)

// world caching: generation is expensive and identical across iterations,
// so every benchmark shares one world per seed and re-arms it per campaign
// with BeginScan (exactly how the experiment harness reuses its world).
var (
	worldOnce sync.Once
	world     *netsim.World
)

func sharedWorld() *netsim.World {
	worldOnce.Do(func() {
		world = netsim.Generate(netsim.TinyConfig(7))
	})
	return world
}

// runCampaign runs one deterministic virtual-time campaign over the shared
// world and returns its result. batch is the engine's send-batch size — the
// number of probes per transport operation.
func runCampaign(w *netsim.World, workers, batch int) (*scanner.Result, error) {
	w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
	w.BeginScan()
	targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), 42)
	if err != nil {
		return nil, err
	}
	return scanner.Scan(w.NewTransport(), targets, scanner.Config{
		Rate: 5000, Batch: batch, Timeout: 8 * time.Second,
		Clock: w.Clock, Seed: 42, Workers: workers,
	})
}

// ScanCampaign is the end-to-end scan benchmark: one full simulated
// campaign (probe encode, transport, agent codec, capture, canonical sort)
// per iteration. Its B/op is the headline number the zero-allocation work
// is measured against.
func ScanCampaign(b *testing.B) {
	w := sharedWorld()
	b.ReportAllocs()
	b.ResetTimer()
	var probes, responses uint64
	for i := 0; i < b.N; i++ {
		res, err := runCampaign(w, 4, 256)
		if err != nil {
			b.Fatal(err)
		}
		probes = res.Sent
		responses = uint64(len(res.Responses))
	}
	b.ReportMetric(float64(probes), "probes/op")
	b.ReportMetric(float64(responses), "responses/op")
}

// runModuleCampaign is runCampaign through a probe module: the same
// deterministic virtual-time campaign, but with the module's probe bytes on
// the wire instead of the inline SNMPv3 discovery request.
func runModuleCampaign(w *netsim.World, m probe.Module, workers, batch int) (*scanner.Result, error) {
	w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
	w.BeginScan()
	targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), 42)
	if err != nil {
		return nil, err
	}
	cfg := scanner.Config{
		Rate: 5000, Batch: batch, Timeout: 8 * time.Second,
		Clock: w.Clock, Seed: 42, Workers: workers,
	}
	return scanner.ScanProbe(context.Background(), w.NewTransport(), targets, cfg, scanner.ProbeSpec{
		Payload: m.AppendProbe(nil, cfg.Seed), Ident: m.Ident(cfg.Seed),
	})
}

// IcmpTsCampaign is ScanCampaign through the icmp-ts probe module: one full
// simulated ICMP-timestamp campaign per iteration, pinning the module seam's
// hot path (AppendProbe into the engine's buffer, the agents' timestamp
// responders) to the same performance envelope as the SNMPv3 campaign.
func IcmpTsCampaign(b *testing.B) {
	w := sharedWorld()
	m, err := probe.Get("icmp-ts")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var probes, responses uint64
	for i := 0; i < b.N; i++ {
		res, err := runModuleCampaign(w, m, 4, 256)
		if err != nil {
			b.Fatal(err)
		}
		probes = res.Sent
		responses = uint64(len(res.Responses))
	}
	b.ReportMetric(float64(probes), "probes/op")
	b.ReportMetric(float64(responses), "responses/op")
}

// ScanScalingGrid is the (workers, batch) grid the pps-vs-configuration
// curve is measured over: worker counts spanning single-threaded to
// oversubscribed, batch sizes from the scalar-equivalent 1 to past the
// sendmmsg chunk size.
var ScanScalingGrid = struct {
	Workers []int
	Batches []int
}{
	Workers: []int{1, 4, 16},
	Batches: []int{1, 8, 64, 256},
}

// ScanScaling returns the campaign benchmark for one (workers, batch) point
// of the scaling grid. Alongside ns/op it reports probes/s — the
// hardware-speed packets-per-second figure the batch transport work is
// measured by (virtual campaign time never enters it).
func ScanScaling(workers, batch int) func(*testing.B) {
	return func(b *testing.B) {
		w := sharedWorld()
		b.ReportAllocs()
		b.ResetTimer()
		var probes uint64
		for i := 0; i < b.N; i++ {
			res, err := runCampaign(w, workers, batch)
			if err != nil {
				b.Fatal(err)
			}
			probes = res.Sent
		}
		b.StopTimer()
		b.ReportMetric(float64(probes), "probes/op")
		if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
			b.ReportMetric(float64(probes)*float64(b.N)/elapsed, "probes/s")
		}
	}
}

// CollectResponses benchmarks the response-parsing fold (core.Collect) over
// one campaign's captured datagrams.
func CollectResponses(b *testing.B) {
	w := sharedWorld()
	res, err := runCampaign(w, 4, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var ips int
	for i := 0; i < b.N; i++ {
		c := core.Collect(res)
		ips = len(c.ByIP)
	}
	b.ReportMetric(float64(ips), "ips/op")
	b.ReportMetric(float64(len(res.Responses)), "datagrams/op")
}

// EncodeProbe benchmarks the campaign probe encoder.
func EncodeProbe(b *testing.B) {
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		out, err := encodeProbe(buf, int64(i)&0x7FFFFFFF, int64(i*7)&0x7FFFFFFF)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

// ParseResponse benchmarks the discovery-response parser over a
// representative report datagram.
func ParseResponse(b *testing.B) {
	rep, err := snmp.NewDiscoveryReport(snmp.NewDiscoveryRequest(7, 7),
		[]byte{0x80, 0x00, 0x1F, 0x88, 0x04, 1, 2, 3, 4, 5}, 3, 123456, 9).Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := parseResponse(rep); err != nil {
			b.Fatal(err)
		}
	}
}

// benchObservations builds n synthetic observations for store benchmarks.
func benchObservations(n int) []*core.Observation {
	at := time.Date(2021, 4, 16, 0, 0, 0, 0, time.UTC)
	out := make([]*core.Observation, n)
	for i := range out {
		ip := netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
		out[i] = &core.Observation{
			IP:          ip,
			EngineID:    []byte{0x80, 0x00, 0x00, 0x09, 0x03, 0x00, byte(i >> 16), byte(i >> 8), byte(i), 0xAB, 0xCD},
			EngineBoots: int64(i%7 + 1),
			EngineTime:  int64(i%100000 + 1),
			ReceivedAt:  at.Add(time.Duration(i) * time.Millisecond),
			Packets:     1,
		}
	}
	return out
}

// StoreIngest benchmarks campaign ingest into the log-structured store:
// one full campaign of synthetic observations per iteration.
func StoreIngest(b *testing.B) {
	const n = 5000
	obs := benchObservations(n)
	c := &core.Campaign{ByIP: make(map[netip.Addr]*core.Observation, n)}
	for _, o := range obs {
		c.ByIP[o.IP] = o
	}
	st, err := store.Open(store.Options{DisableCompaction: true})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.AddCampaign(c)
	}
	b.StopTimer()
	b.ReportMetric(float64(n), "samples/op")
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/elapsed, "samples/s")
	}
}

// StoreDurableIngest is StoreIngest with the write-ahead log and on-disk
// segments enabled: the same campaign per iteration, but every batch is
// logged and fsynced before acknowledgment. The spread between the two is
// the price of durability.
func StoreDurableIngest(b *testing.B) {
	const n = 5000
	obs := benchObservations(n)
	c := &core.Campaign{ByIP: make(map[netip.Addr]*core.Observation, n)}
	for _, o := range obs {
		c.ByIP[o.IP] = o
	}
	// os.MkdirTemp rather than b.TempDir: these bodies also run through
	// testing.Benchmark in cmd/benchjson, where no test cleanup runs.
	dir, err := os.MkdirTemp("", "snmpfp-bench-store")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(store.Options{Dir: dir, DisableCompaction: true})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.AddCampaign(c)
	}
	b.StopTimer()
	b.ReportMetric(float64(n), "samples/op")
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/elapsed, "samples/s")
	}
}

// StoreCompact benchmarks a full-merge compaction over a store holding
// several flushed campaigns.
func StoreCompact(b *testing.B) {
	const n = 2000
	obs := benchObservations(n)
	c := &core.Campaign{ByIP: make(map[netip.Addr]*core.Observation, n)}
	for _, o := range obs {
		c.ByIP[o.IP] = o
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := store.Open(store.Options{DisableCompaction: true, FlushThreshold: 512})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			st.AddCampaign(c)
		}
		b.StartTimer()
		st.Compact()
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
}

// newBenchServer builds a store+server pair preloaded with a few synthetic
// campaigns, for the query-path benchmarks.
func newBenchServer(b *testing.B) (*serve.Server, []*core.Observation) {
	const n = 2000
	obs := benchObservations(n)
	c := &core.Campaign{ByIP: make(map[netip.Addr]*core.Observation, n)}
	for _, o := range obs {
		c.ByIP[o.IP] = o
	}
	st, err := store.Open(store.Options{DisableCompaction: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	for i := 0; i < 3; i++ {
		st.AddCampaign(c)
	}
	return serve.New(st), obs
}

// reportP99 sorts the per-iteration latencies and reports the 99th
// percentile in nanoseconds — the number the bench-gate SLO pins.
func reportP99(b *testing.B, durs []time.Duration) {
	if len(durs) == 0 {
		return
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	b.ReportMetric(float64(durs[len(durs)*99/100].Nanoseconds()), "p99_ns")
}

// ServeIP benchmarks GET /v1/ip/{addr} straight through the handler (no
// socket), measuring store snapshot + JSON encode cost (with the default
// result cache, so the steady state mixes cold encodes and warm hits).
// Alongside ns/op it reports the per-request p99 latency.
func ServeIP(b *testing.B) {
	srv, obs := newBenchServer(b)
	durs := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := obs[i%len(obs)]
		req := httptest.NewRequest("GET", "/v1/ip/"+o.IP.String(), nil)
		w := httptest.NewRecorder()
		start := time.Now()
		srv.ServeHTTP(w, req)
		durs = append(durs, time.Since(start))
		if w.Code != http.StatusOK {
			b.Fatalf("GET /v1/ip: %d", w.Code)
		}
	}
	b.StopTimer()
	reportP99(b, durs)
}

// benchRecorder is a reusable allocation-free ResponseWriter for the
// latency-SLO arms: the httptest recorder allocates a body buffer and
// header map per request, and that garbage-collection churn — not the
// serve path — ends up dominating the measured tail.
type benchRecorder struct {
	h    http.Header
	code int
	n    int
}

func (r *benchRecorder) Header() http.Header  { return r.h }
func (r *benchRecorder) WriteHeader(code int) { r.code = code }
func (r *benchRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	r.n += len(p)
	return len(p), nil
}

func (r *benchRecorder) reset() {
	for k := range r.h {
		delete(r.h, k)
	}
	r.code, r.n = 0, 0
}

// ServeIPWarm is the warm-cache arm of ServeIP: 64 hot IPs hammered in
// rotation, so after the first lap every response comes from the result
// cache. Its p99_ns is the warm-read SLO the bench gate enforces; requests
// are preallocated and the recorder reused, so the timed section is the
// serve path alone.
func ServeIPWarm(b *testing.B) {
	srv, obs := newBenchServer(b)
	hot := obs
	if len(hot) > 64 {
		hot = hot[:64]
	}
	reqs := make([]*http.Request, len(hot))
	for i, o := range hot {
		reqs[i] = httptest.NewRequest("GET", "/v1/ip/"+o.IP.String(), nil)
	}
	w := &benchRecorder{h: make(http.Header)}
	// Prime the cache so iteration 0 is already warm.
	for _, req := range reqs {
		srv.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("GET /v1/ip prime: %d", w.code)
		}
		w.reset()
	}
	durs := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := reqs[i%len(reqs)]
		start := time.Now()
		srv.ServeHTTP(w, req)
		durs = append(durs, time.Since(start))
		if w.code != http.StatusOK {
			b.Fatalf("GET /v1/ip: %d", w.code)
		}
		w.reset()
	}
	b.StopTimer()
	reportP99(b, durs)
}

// newMissBenchServer builds a durable store whose whole state lives in
// sealed v3 segments, for the cold negative-lookup arms. disableBloom
// controls whether the segments carry their split-block filters.
func newMissBenchServer(b *testing.B, disableBloom bool) (*serve.Server, *store.Store) {
	const n = 2000
	obs := benchObservations(n)
	c := &core.Campaign{ByIP: make(map[netip.Addr]*core.Observation, n)}
	for _, o := range obs {
		c.ByIP[o.IP] = o
	}
	// os.MkdirTemp rather than b.TempDir: these bodies also run through
	// testing.Benchmark in cmd/benchjson, where no test cleanup runs.
	dir, err := os.MkdirTemp("", "snmpfp-bench-miss")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	st, err := store.Open(store.Options{Dir: dir, DisableCompaction: true, DisableBloom: disableBloom})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	for i := 0; i < 3; i++ {
		st.AddCampaign(c)
	}
	if err := st.Flush(); err != nil {
		b.Fatal(err)
	}
	return serve.New(st), st
}

// serveIPMiss drives GET /v1/ip for addresses the store has never seen and
// reports seg_bytes/op — segment bytes physically consulted per miss. With
// bloom filters every segment rejects the probe before its index is
// touched; without them each miss pays a binary search per segment.
func serveIPMiss(b *testing.B, disableBloom bool) {
	srv, st := newMissBenchServer(b, disableBloom)
	before := st.SegBytesRead()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 203.0.113.0/24 and friends never appear in benchObservations.
		addr := netip.AddrFrom4([4]byte{203, byte(i >> 16), byte(i >> 8), byte(i)})
		req := httptest.NewRequest("GET", "/v1/ip/"+addr.String(), nil)
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusNotFound {
			b.Fatalf("GET /v1/ip miss: %d", w.Code)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(st.SegBytesRead()-before)/float64(b.N), "seg_bytes/op")
}

// ServeIPMissBloom is the cold negative lookup with per-segment bloom
// filters consulted first.
func ServeIPMissBloom(b *testing.B) { serveIPMiss(b, false) }

// ServeIPMissNoBloom is the same workload with filters disabled — the
// pre-PR read path, kept as the comparison arm for the ≥5x bytes-read
// reduction gate.
func ServeIPMissNoBloom(b *testing.B) { serveIPMiss(b, true) }

// ServeVendors benchmarks GET /v1/vendors, reporting p99_ns alongside
// ns/op.
func ServeVendors(b *testing.B) {
	srv, _ := newBenchServer(b)
	durs := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", "/v1/vendors", nil)
		w := httptest.NewRecorder()
		start := time.Now()
		srv.ServeHTTP(w, req)
		durs = append(durs, time.Since(start))
		if w.Code != http.StatusOK {
			b.Fatalf("GET /v1/vendors: %d", w.Code)
		}
	}
	b.StopTimer()
	reportP99(b, durs)
}

// ServeStats benchmarks GET /v1/stats.
func ServeStats(b *testing.B) {
	srv, _ := newBenchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", "/v1/stats", nil)
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("GET /v1/stats: %d", w.Code)
		}
	}
}
