package benchsuite

import "snmpv3fp/internal/snmp"

// encodeProbe and parseResponse are the codec hot paths under benchmark: the
// zero-allocation fast paths the scanner, prober and simulator run on. The
// pre-PR allocating equivalents were snmp.EncodeDiscoveryRequest and
// snmp.ParseDiscoveryResponse (their numbers are kept as the baseline block
// in the BENCH_*.json files).

func encodeProbe(dst []byte, msgID, requestID int64) ([]byte, error) {
	return snmp.AppendDiscoveryRequest(dst, msgID, requestID), nil
}

// parseScratch is the reused parse target; the benchmark harness runs each
// benchmark body on one goroutine, so a package-level struct is safe and
// mirrors how core.Collect reuses a single DiscoveryResponse.
var parseScratch = func() *snmp.DiscoveryResponse {
	return &snmp.DiscoveryResponse{ReportOID: make([]uint32, 0, 16)}
}()

func parseResponse(buf []byte) error {
	return snmp.ParseDiscoveryResponseInto(parseScratch, buf)
}
