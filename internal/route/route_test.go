package route

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"snmpv3fp/internal/iputil"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestLookupBasics(t *testing.T) {
	var tbl Table
	tbl.Insert(mustPrefix("10.0.0.0/8"), 100)
	tbl.Insert(mustPrefix("10.1.0.0/16"), 200)
	tbl.Insert(mustPrefix("2001:db8::/32"), 300)

	cases := []struct {
		addr string
		asn  uint32
		ok   bool
	}{
		{"10.2.3.4", 100, true},
		{"10.1.3.4", 200, true}, // longest match wins
		{"11.0.0.1", 0, false},
		{"2001:db8::1", 300, true},
		{"2001:db9::1", 0, false},
	}
	for _, c := range cases {
		asn, ok := tbl.Lookup(netip.MustParseAddr(c.addr))
		if ok != c.ok || asn != c.asn {
			t.Errorf("Lookup(%s) = %d, %v; want %d, %v", c.addr, asn, ok, c.asn, c.ok)
		}
	}
	if tbl.Len() != 3 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestLongestMatchDepth(t *testing.T) {
	var tbl Table
	tbl.Insert(mustPrefix("192.0.2.0/24"), 1)
	tbl.Insert(mustPrefix("192.0.2.128/25"), 2)
	tbl.Insert(mustPrefix("192.0.2.128/31"), 3)

	asn, bits, ok := tbl.LookupPrefix(netip.MustParseAddr("192.0.2.129"))
	if !ok || asn != 3 || bits != 31 {
		t.Errorf("got %d/%d/%v", asn, bits, ok)
	}
	asn, bits, ok = tbl.LookupPrefix(netip.MustParseAddr("192.0.2.200"))
	if !ok || asn != 2 || bits != 25 {
		t.Errorf("got %d/%d/%v", asn, bits, ok)
	}
	asn, bits, ok = tbl.LookupPrefix(netip.MustParseAddr("192.0.2.5"))
	if !ok || asn != 1 || bits != 24 {
		t.Errorf("got %d/%d/%v", asn, bits, ok)
	}
}

func TestInsertOverwrite(t *testing.T) {
	var tbl Table
	tbl.Insert(mustPrefix("10.0.0.0/8"), 1)
	tbl.Insert(mustPrefix("10.0.0.0/8"), 2)
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
	if asn, _ := tbl.Lookup(netip.MustParseAddr("10.1.1.1")); asn != 2 {
		t.Errorf("asn = %d, want the overwrite", asn)
	}
}

func TestDefaultRoute(t *testing.T) {
	var tbl Table
	tbl.Insert(mustPrefix("0.0.0.0/0"), 64512)
	if asn, ok := tbl.Lookup(netip.MustParseAddr("203.0.113.9")); !ok || asn != 64512 {
		t.Errorf("default route: %d, %v", asn, ok)
	}
	// But not for IPv6 — families are separate.
	if _, ok := tbl.Lookup(netip.MustParseAddr("2001:db8::1")); ok {
		t.Error("IPv4 default matched an IPv6 address")
	}
}

func TestHostRoutes(t *testing.T) {
	var tbl Table
	tbl.Insert(mustPrefix("192.0.2.1/32"), 7)
	tbl.Insert(mustPrefix("2001:db8::7/128"), 8)
	if asn, ok := tbl.Lookup(netip.MustParseAddr("192.0.2.1")); !ok || asn != 7 {
		t.Errorf("/32: %d, %v", asn, ok)
	}
	if _, ok := tbl.Lookup(netip.MustParseAddr("192.0.2.2")); ok {
		t.Error("/32 leaked to neighbour")
	}
	if asn, ok := tbl.Lookup(netip.MustParseAddr("2001:db8::7")); !ok || asn != 8 {
		t.Errorf("/128: %d, %v", asn, ok)
	}
}

func TestInvalidInputs(t *testing.T) {
	var tbl Table
	if err := tbl.Insert(netip.Prefix{}, 1); err == nil {
		t.Error("invalid prefix accepted")
	}
	if _, ok := tbl.Lookup(netip.Addr{}); ok {
		t.Error("invalid addr matched")
	}
}

// TestAgainstBruteForce cross-checks trie lookups against a linear scan
// over randomly generated tables.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tbl Table
		type entry struct {
			p   netip.Prefix
			asn uint32
		}
		var entries []entry
		for i := 0; i < 50; i++ {
			addr := iputil.UintToV4(r.Uint32())
			bits := 8 + r.Intn(25)
			p, err := addr.Prefix(bits)
			if err != nil {
				return false
			}
			asn := uint32(r.Intn(1000)) + 1
			// Skip duplicate prefixes so the linear model stays simple.
			dup := false
			for _, e := range entries {
				if e.p == p {
					dup = true
				}
			}
			if dup {
				continue
			}
			entries = append(entries, entry{p, asn})
			tbl.Insert(p, asn)
		}
		for i := 0; i < 200; i++ {
			addr := iputil.UintToV4(rng.Uint32())
			wantASN, wantBits, wantOK := uint32(0), -1, false
			for _, e := range entries {
				if e.p.Contains(addr) && e.p.Bits() > wantBits {
					wantASN, wantBits, wantOK = e.asn, e.p.Bits(), true
				}
			}
			gotASN, gotOK := tbl.Lookup(addr)
			if gotOK != wantOK || (wantOK && gotASN != wantASN) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	var tbl Table
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		addr := iputil.UintToV4(r.Uint32())
		p, _ := addr.Prefix(8 + r.Intn(17))
		tbl.Insert(p, uint32(i))
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = iputil.UintToV4(r.Uint32())
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(addrs[i%len(addrs)])
	}
}
