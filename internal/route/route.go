// Package route implements a longest-prefix-match IP-to-origin-AS table —
// the substrate the paper uses (via BGP route collectors and CAIDA's AS
// Rank) to attribute scanned addresses to autonomous systems and regions.
//
// The table is a binary trie over address bits, supporting IPv4 and IPv6
// prefixes side by side. Lookups return the origin AS of the most specific
// covering prefix, exactly like a RIB lookup.
package route

import (
	"fmt"
	"net/netip"
)

// node is one binary-trie node.
type node struct {
	children [2]*node
	// hasEntry marks a node that terminates an inserted prefix.
	hasEntry bool
	asn      uint32
}

// Table is an IP-to-AS longest-prefix-match table. The zero value is an
// empty table ready for use.
type Table struct {
	v4, v6  node
	entries int
}

// Len reports the number of inserted prefixes.
func (t *Table) Len() int { return t.entries }

// Insert adds a prefix with its origin AS. Inserting the same prefix twice
// overwrites the origin (last announcement wins, as in a RIB).
func (t *Table) Insert(p netip.Prefix, asn uint32) error {
	if !p.IsValid() {
		return fmt.Errorf("route: invalid prefix")
	}
	p = p.Masked()
	root := &t.v6
	if p.Addr().Is4() {
		root = &t.v4
	}
	bits := p.Addr().AsSlice()
	cur := root
	for i := 0; i < p.Bits(); i++ {
		b := (bits[i/8] >> (7 - i%8)) & 1
		if cur.children[b] == nil {
			cur.children[b] = &node{}
		}
		cur = cur.children[b]
	}
	if !cur.hasEntry {
		t.entries++
	}
	cur.hasEntry = true
	cur.asn = asn
	return nil
}

// Lookup returns the origin AS of the longest matching prefix.
func (t *Table) Lookup(addr netip.Addr) (asn uint32, ok bool) {
	if !addr.IsValid() {
		return 0, false
	}
	addr = addr.Unmap()
	root := &t.v6
	maxBits := 128
	if addr.Is4() {
		root = &t.v4
		maxBits = 32
	}
	bits := addr.AsSlice()
	cur := root
	for i := 0; ; i++ {
		if cur.hasEntry {
			asn, ok = cur.asn, true
		}
		if i >= maxBits {
			break
		}
		b := (bits[i/8] >> (7 - i%8)) & 1
		if cur.children[b] == nil {
			break
		}
		cur = cur.children[b]
	}
	return asn, ok
}

// LookupPrefix returns the origin AS and the length of the matched prefix,
// for diagnostics.
func (t *Table) LookupPrefix(addr netip.Addr) (asn uint32, bits int, ok bool) {
	if !addr.IsValid() {
		return 0, 0, false
	}
	addr = addr.Unmap()
	root := &t.v6
	maxBits := 128
	if addr.Is4() {
		root = &t.v4
		maxBits = 32
	}
	raw := addr.AsSlice()
	cur := root
	for i := 0; ; i++ {
		if cur.hasEntry {
			asn, bits, ok = cur.asn, i, true
		}
		if i >= maxBits {
			break
		}
		b := (raw[i/8] >> (7 - i%8)) & 1
		if cur.children[b] == nil {
			break
		}
		cur = cur.children[b]
	}
	return asn, bits, ok
}
