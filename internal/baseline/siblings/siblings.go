// Package siblings implements IPv4/IPv6 sibling detection from TCP
// timestamp clock skew in the style of Scheitle et al. ("Large-Scale
// Classification of IPv6-IPv4 Siblings with Variable Clock Skew", TMA
// 2017) — the prior dual-stack association technique the paper's
// Section 7.3 discusses.
//
// Two addresses served by the same machine expose one TCP timestamp clock:
// identical frequency skew and identical origin. The detector samples each
// candidate address's timestamp twice, estimates (skew, origin), and
// classifies a candidate pair as siblings when both estimates agree within
// tolerance. The technique needs an open TCP service on *both* addresses,
// which routers rarely offer — the blind spot that makes SNMPv3 the first
// broadly applicable dual-stack router technique.
package siblings

import (
	"math"
	"net/netip"
	"time"

	"snmpv3fp/internal/netsim"
)

// Candidate is one IPv4/IPv6 address pair under test (in practice derived
// from DNS names, as in the original work).
type Candidate struct {
	V4, V6 netip.Addr
}

// Verdict is the classification outcome for one candidate pair.
type Verdict int

// Verdicts.
const (
	// NoData: at least one address exposes no usable TCP timestamps.
	NoData Verdict = iota
	// Siblings: clock skew and origin agree.
	Siblings
	// NonSiblings: measurable clocks that do not match.
	NonSiblings
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Siblings:
		return "siblings"
	case NonSiblings:
		return "non-siblings"
	default:
		return "no data"
	}
}

// estimate is a per-address clock characterization.
type estimate struct {
	// hzSkew is the measured deviation from the nominal timestamp
	// frequency in ticks per second.
	hzSkew float64
	// origin is the back-projected timestamp value at the measurement
	// epoch.
	origin float64
}

// spacing between the two samples per address. Longer spacing resolves
// smaller skews; the original work measures over hours.
const spacing = 4 * time.Hour

// measure characterizes one address's clock.
func measure(w *netsim.World, addr netip.Addr, start time.Time) (estimate, bool) {
	v1, ok := w.TCPTimestamp(addr, start)
	if !ok {
		return estimate{}, false
	}
	v2, ok := w.TCPTimestamp(addr, start.Add(spacing))
	if !ok {
		return estimate{}, false
	}
	dt := spacing.Seconds()
	rate := float64(v2-v1) / dt // observed ticks per second
	elapsed := start.Sub(w.Cfg.StartTime).Seconds()
	origin := float64(v1) - rate*elapsed
	return estimate{hzSkew: rate - 1000.0, origin: origin}, true
}

// Tolerances for matching: skew within 0.02 Hz (20 ppm at 1 kHz) and
// origin within 1000 ticks.
const (
	skewTolerance   = 0.02
	originTolerance = 1000.0
)

// Classify tests one candidate pair.
func Classify(w *netsim.World, c Candidate, at time.Time) Verdict {
	e4, ok4 := measure(w, c.V4, at)
	e6, ok6 := measure(w, c.V6, at)
	if !ok4 || !ok6 {
		return NoData
	}
	if math.Abs(e4.hzSkew-e6.hzSkew) <= skewTolerance &&
		math.Abs(e4.origin-e6.origin) <= originTolerance {
		return Siblings
	}
	return NonSiblings
}

// Result aggregates a candidate sweep.
type Result struct {
	Candidates  int
	NoData      int
	Siblings    int
	NonSiblings int
}

// Run classifies every candidate.
func Run(w *netsim.World, candidates []Candidate, at time.Time) Result {
	var r Result
	r.Candidates = len(candidates)
	for _, c := range candidates {
		switch Classify(w, c, at) {
		case Siblings:
			r.Siblings++
		case NonSiblings:
			r.NonSiblings++
		default:
			r.NoData++
		}
	}
	return r
}
