package siblings

import (
	"testing"
	"time"

	"snmpv3fp/internal/netsim"
)

func TestVerdictStrings(t *testing.T) {
	if Siblings.String() != "siblings" || NonSiblings.String() != "non-siblings" || NoData.String() != "no data" {
		t.Error("verdict names wrong")
	}
}

// collectCandidates builds true sibling pairs (same device) and decoy pairs
// (different devices) from dual-stack devices with open TCP on both
// families.
func collectCandidates(w *netsim.World, at time.Time) (true_, decoys []Candidate) {
	var measurable []*netsim.Device
	for _, d := range w.Devices {
		if len(d.V4) == 0 || len(d.V6) == 0 || !d.Responds {
			continue
		}
		if _, ok := w.TCPTimestamp(d.V4[0], at); !ok {
			continue
		}
		if _, ok := w.TCPTimestamp(d.V6[0], at); !ok {
			continue
		}
		measurable = append(measurable, d)
	}
	for i, d := range measurable {
		true_ = append(true_, Candidate{V4: d.V4[0], V6: d.V6[0]})
		if i+1 < len(measurable) {
			decoys = append(decoys, Candidate{V4: d.V4[0], V6: measurable[i+1].V6[0]})
		}
	}
	return true_, decoys
}

func TestSiblingsDetected(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(8))
	at := w.Cfg.StartTime.Add(20 * 24 * time.Hour)
	truePairs, decoys := collectCandidates(w, at)
	if len(truePairs) == 0 {
		t.Skip("no measurable dual-stack devices in tiny world")
	}
	for _, c := range truePairs {
		if got := Classify(w, c, at); got != Siblings {
			t.Errorf("true pair %v/%v classified %v", c.V4, c.V6, got)
		}
	}
	for _, c := range decoys {
		if got := Classify(w, c, at); got == Siblings {
			t.Errorf("decoy pair %v/%v classified siblings", c.V4, c.V6)
		}
	}
}

func TestNoDataForClosedDevices(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(8))
	at := w.Cfg.StartTime
	// Find a dual-stack device without an open TCP port.
	for _, d := range w.Devices {
		if len(d.V4) == 0 || len(d.V6) == 0 {
			continue
		}
		if _, ok := w.TCPTimestamp(d.V4[0], at); ok {
			continue
		}
		got := Classify(w, Candidate{V4: d.V4[0], V6: d.V6[0]}, at)
		if got != NoData {
			t.Errorf("closed device classified %v", got)
		}
		return
	}
	t.Skip("all dual-stack devices have open TCP")
}

func TestRunAggregates(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(8))
	at := w.Cfg.StartTime.Add(20 * 24 * time.Hour)
	truePairs, decoys := collectCandidates(w, at)
	all := append(append([]Candidate{}, truePairs...), decoys...)
	r := Run(w, all, at)
	if r.Candidates != len(all) {
		t.Errorf("candidates = %d", r.Candidates)
	}
	if r.Siblings != len(truePairs) {
		t.Errorf("siblings = %d, want %d", r.Siblings, len(truePairs))
	}
	if r.Siblings+r.NonSiblings+r.NoData != r.Candidates {
		t.Error("counts do not add up")
	}
}
