package ttlfp

import (
	"net/netip"
	"testing"

	"snmpv3fp/internal/netsim"
)

func TestInferITTL(t *testing.T) {
	cases := []struct {
		ttl, want int
	}{
		{255, 255}, {250, 255}, {129, 255},
		{128, 128}, {120, 128}, {65, 128},
		{64, 64}, {60, 64}, {33, 64},
		{32, 32}, {1, 32},
	}
	for _, c := range cases {
		if got := inferITTL(c.ttl); got != c.want {
			t.Errorf("inferITTL(%d) = %d, want %d", c.ttl, got, c.want)
		}
	}
}

func TestFingerprintAgainstWorld(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(4))
	checked := 0
	ambiguous := 0
	for _, d := range w.Devices {
		if !d.Responds || len(d.V4) == 0 {
			continue
		}
		sig, ok := Fingerprint(w, d.V4[0], 5)
		if !ok {
			t.Fatalf("responsive device %d gave no TTL", d.ID)
		}
		if sig.ITTL != d.Profile.InitTTL {
			t.Fatalf("device %d: inferred iTTL %d, actual %d", d.ID, sig.ITTL, d.Profile.InitTTL)
		}
		if sig.Ambiguous() {
			ambiguous++
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
	// The technique's key weakness: almost everything is ambiguous.
	if float64(ambiguous)/float64(checked) < 0.9 {
		t.Errorf("only %d/%d ambiguous; iTTL classes should be coarse", ambiguous, checked)
	}
}

func TestCiscoHuaweiShareClass(t *testing.T) {
	// The paper's explicit example: Huawei has the same iTTL signature as
	// Cisco, so the technique cannot separate them.
	sig := Signature{ITTL: 255, Candidates: classes[255]}
	if !sig.Matches("Cisco") || !sig.Matches("Huawei") {
		t.Error("iTTL 255 class should contain both Cisco and Huawei")
	}
	if sig.Matches("Juniper") {
		t.Error("Juniper (iTTL 64) must not match the 255 class")
	}
}

func TestFingerprintSilent(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(4))
	if _, ok := Fingerprint(w, netip.MustParseAddr("203.0.113.1"), 3); ok {
		t.Error("silent address fingerprinted")
	}
}

func TestHopSaturation(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(4))
	for _, d := range w.Devices {
		if d.Responds && len(d.V4) > 0 {
			// Even absurd hop counts must not panic or go negative.
			if sig, ok := Fingerprint(w, d.V4[0], 1000); ok && sig.ITTL < 32 {
				t.Errorf("iTTL = %d", sig.ITTL)
			}
			break
		}
	}
}
