// Package ttlfp implements initial-TTL router fingerprinting in the style
// of Vanaubel et al. ("Network Fingerprinting: TTL-Based Router
// Signatures", IMC 2013), discussed in the paper's Section 7.1.
//
// The inferred initial TTL of a router's replies narrows the platform: the
// classic pitfall — reproduced here — is that the signature space is tiny,
// so e.g. Huawei and Cisco share the iTTL=255 class and cannot be told
// apart.
package ttlfp

import (
	"net/netip"

	"snmpv3fp/internal/netsim"
)

// Signature is the iTTL class of a device.
type Signature struct {
	ITTL int
	// Candidates are the vendors known to use this iTTL; the inference is
	// ambiguous whenever there is more than one.
	Candidates []string
}

// Ambiguous reports whether the signature admits multiple vendors.
func (s Signature) Ambiguous() bool { return len(s.Candidates) > 1 }

// classes maps observed iTTL to candidate vendor sets.
var classes = map[int][]string{
	255: {"Cisco", "Huawei", "H3C", "Ericsson", "Fortinet"},
	128: {"OneAccess", "Windows-based"},
	64:  {"Juniper", "Net-SNMP", "Brocade", "MikroTik", "Nokia SROS", "Adtran", "Ruijie"},
	32:  {"legacy-unix"},
}

// inferITTL rounds a hop-decremented TTL up to the next canonical initial
// value, as the technique does with real replies.
func inferITTL(ttl int) int {
	switch {
	case ttl > 128:
		return 255
	case ttl > 64:
		return 128
	case ttl > 32:
		return 64
	default:
		return 32
	}
}

// Fingerprint infers the iTTL class of addr. ok is false when the target
// does not reply at all.
func Fingerprint(w *netsim.World, addr netip.Addr, hops int) (Signature, bool) {
	ttl, ok := w.TTLSample(addr)
	if !ok {
		return Signature{}, false
	}
	observed := ttl - hops
	if observed < 1 {
		observed = 1
	}
	ittl := inferITTL(observed)
	return Signature{ITTL: ittl, Candidates: classes[ittl]}, true
}

// Matches reports whether the signature is consistent with the vendor.
func (s Signature) Matches(vendor string) bool {
	for _, c := range s.Candidates {
		if c == vendor {
			return true
		}
	}
	return false
}
