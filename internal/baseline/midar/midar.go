// Package midar implements IP-ID-based alias resolution in the style of
// MIDAR (Keys et al., 2013), the paper's main IPv4 comparison baseline
// (Section 5.3).
//
// Routers that share one IP-ID counter across interfaces interleave into a
// single monotonically increasing sequence when probed alternately; MIDAR's
// Monotonic Bounds Test exploits this. This implementation keeps MIDAR's
// estimation-then-pairwise-verification structure in a simplified form:
// per-address velocity estimation discards random/zero counters, candidates
// are sorted by projected counter value, and neighbouring candidates are
// verified with an interleaved monotonicity test, merging passers with a
// union-find.
package midar

import (
	"net/netip"
	"sort"
	"time"

	"snmpv3fp/internal/analysis"
	"snmpv3fp/internal/netsim"
)

// sampler abstracts the probing primitive so speedtrap can reuse the
// machinery for IPv6 fragment identifiers.
type sampler func(addr netip.Addr, at time.Time, seq int) (uint16, bool)

// Config tunes the resolver.
type Config struct {
	// Window is how many sorted neighbours each candidate is pair-tested
	// against.
	Window int
	// Probes is the number of interleaved samples per pair test.
	Probes int
}

// DefaultConfig mirrors a light MIDAR run.
func DefaultConfig() Config { return Config{Window: 12, Probes: 6} }

// Resolve runs the resolver over IPv4 candidates against the simulated
// world at the given instant.
func Resolve(w *netsim.World, candidates []netip.Addr, now time.Time, cfg Config) []analysis.AddrSet {
	return resolve(w.IPIDSample, candidates, now, cfg)
}

type estimate struct {
	addr     netip.Addr
	value    float64 // projected counter value at the common epoch
	velocity float64 // counts per second
}

func resolve(sample sampler, candidates []netip.Addr, now time.Time, cfg Config) []analysis.AddrSet {
	if cfg.Window <= 0 {
		cfg = DefaultConfig()
	}
	seq := 0
	nextSeq := func() int { seq++; return seq }

	// Estimation stage: three spaced samples per candidate; keep addresses
	// with a monotonically increasing counter (sequential assignment).
	var ests []estimate
	spacing := time.Second
	for _, a := range candidates {
		v0, ok := sample(a, now, nextSeq())
		if !ok {
			continue
		}
		v1, ok := sample(a, now.Add(spacing), nextSeq())
		if !ok {
			continue
		}
		v2, ok := sample(a, now.Add(2*spacing), nextSeq())
		if !ok {
			continue
		}
		d1, d2 := int32(v1)-int32(v0), int32(v2)-int32(v1)
		// Sequential counters advance by a small positive amount; random
		// assignment produces large jumps or reversals; zero counters do
		// not move.
		if d1 <= 0 || d2 <= 0 || d1 > 2000 || d2 > 2000 {
			continue
		}
		vel := float64(d1+d2) / (2 * spacing.Seconds())
		ests = append(ests, estimate{addr: a, value: float64(v2), velocity: vel})
	}

	// Corroboration stage: sort by projected value and pair-test
	// neighbours with similar velocity.
	sort.Slice(ests, func(i, j int) bool {
		if ests[i].value != ests[j].value {
			return ests[i].value < ests[j].value
		}
		return ests[i].addr.Less(ests[j].addr)
	})
	uf := newUnionFind(len(ests))
	base := now.Add(3 * spacing)
	for i := range ests {
		hi := i + cfg.Window
		if hi > len(ests) {
			hi = len(ests)
		}
		for j := i + 1; j < hi; j++ {
			if ests[j].value-ests[i].value > 400 {
				break
			}
			if uf.find(i) == uf.find(j) {
				continue
			}
			if pairTest(sample, ests[i].addr, ests[j].addr, base, cfg.Probes, nextSeq) {
				uf.union(i, j)
			}
		}
		base = base.Add(200 * time.Millisecond)
	}

	groups := map[int][]netip.Addr{}
	for i, e := range ests {
		root := uf.find(i)
		groups[root] = append(groups[root], e.addr)
	}
	out := make([]analysis.AddrSet, 0, len(groups))
	for _, g := range groups {
		out = append(out, analysis.AddrSet(g).Normalize())
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0].Less(out[j][0])
	})
	return out
}

// pairTest probes a and b alternately and requires the combined IP-ID
// sequence to increase monotonically — the Monotonic Bounds Test.
func pairTest(sample sampler, a, b netip.Addr, start time.Time, probes int, nextSeq func() int) bool {
	prev := int32(-1)
	at := start
	for i := 0; i < probes; i++ {
		addr := a
		if i%2 == 1 {
			addr = b
		}
		v, ok := sample(addr, at, nextSeq())
		if !ok {
			return false
		}
		if int32(v) <= prev {
			return false
		}
		prev = int32(v)
		at = at.Add(50 * time.Millisecond)
	}
	return true
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}
