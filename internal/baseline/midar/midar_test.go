package midar

import (
	"net/netip"
	"testing"
	"time"

	"snmpv3fp/internal/netsim"
)

func world(t *testing.T) *netsim.World {
	t.Helper()
	return netsim.Generate(netsim.TinyConfig(5))
}

// candidatesOf gathers IPv4 addresses of devices matching the predicate
// whose interfaces answer ICMP probing.
func candidatesOf(w *netsim.World, now time.Time, pred func(*netsim.Device) bool) []netip.Addr {
	var out []netip.Addr
	for _, d := range w.Devices {
		if !pred(d) {
			continue
		}
		for _, a := range d.V4 {
			if _, ok := w.IPIDSample(a, now, 0); ok {
				out = append(out, a)
			}
		}
	}
	return out
}

func TestResolveFindsSharedCounterAliases(t *testing.T) {
	w := world(t)
	now := w.Cfg.StartTime
	// Restrict to slow shared-counter devices with 2+ reachable
	// interfaces: the technique's sweet spot.
	cands := candidatesOf(w, now, func(d *netsim.Device) bool {
		return d.Responds && d.Profile.IPID == netsim.IPIDShared && len(d.V4) >= 2
	})
	if len(cands) < 10 {
		t.Skip("not enough shared-counter candidates in tiny world")
	}
	sets := Resolve(w, cands, now, DefaultConfig())
	nonSingleton := 0
	for _, s := range sets {
		if len(s) > 1 {
			nonSingleton++
		}
	}
	if nonSingleton == 0 {
		t.Fatal("no aliases found among shared-counter devices")
	}
	// Precision check: every non-singleton set must group one device.
	for _, s := range sets {
		if len(s) < 2 {
			continue
		}
		first := w.DeviceAt(s[0])
		for _, a := range s[1:] {
			if w.DeviceAt(a) != first {
				t.Fatalf("false alias: %v and %v are different devices", s[0], a)
			}
		}
	}
}

func TestResolveRejectsRandomCounters(t *testing.T) {
	w := world(t)
	now := w.Cfg.StartTime
	cands := candidatesOf(w, now, func(d *netsim.Device) bool {
		return d.Responds && d.Profile.IPID == netsim.IPIDRandom
	})
	sets := Resolve(w, cands, now, DefaultConfig())
	for _, s := range sets {
		if len(s) > 1 {
			t.Fatalf("random-IPID devices aliased: %v", s)
		}
	}
}

func TestResolveDoesNotMergePerInterfaceCounters(t *testing.T) {
	w := world(t)
	now := w.Cfg.StartTime
	cands := candidatesOf(w, now, func(d *netsim.Device) bool {
		return d.Responds && d.Profile.IPID == netsim.IPIDPerInterface && len(d.V4) >= 2
	})
	sets := Resolve(w, cands, now, DefaultConfig())
	merged := 0
	total := 0
	for _, s := range sets {
		total += len(s)
		if len(s) > 1 {
			merged += len(s)
		}
	}
	// Per-interface counters may occasionally pair by chance, but the bulk
	// must stay singletons.
	if total > 0 && float64(merged)/float64(total) > 0.2 {
		t.Errorf("%d/%d per-interface addresses merged", merged, total)
	}
}

func TestResolveEmptyAndUnresponsive(t *testing.T) {
	w := world(t)
	now := w.Cfg.StartTime
	if got := Resolve(w, nil, now, DefaultConfig()); len(got) != 0 {
		t.Error("empty candidates produced sets")
	}
	// Unallocated addresses are skipped entirely.
	got := Resolve(w, []netip.Addr{netip.MustParseAddr("203.0.113.99")}, now, DefaultConfig())
	if len(got) != 0 {
		t.Error("unallocated address produced a set")
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	uf.union(0, 1)
	uf.union(3, 4)
	uf.union(1, 3)
	if uf.find(0) != uf.find(4) {
		t.Error("union chain broken")
	}
	if uf.find(2) == uf.find(0) {
		t.Error("separate element merged")
	}
	uf.union(0, 4) // already merged: must be a no-op
	if uf.find(0) != uf.find(4) {
		t.Error("re-union broke the structure")
	}
}

func TestPairTestMonotonic(t *testing.T) {
	// A synthetic sampler with one shared counter for a/b and an offset
	// counter for c.
	a := netip.MustParseAddr("192.0.2.1")
	b := netip.MustParseAddr("192.0.2.2")
	c := netip.MustParseAddr("192.0.2.3")
	counter := 0
	sample := func(addr netip.Addr, at time.Time, seq int) (uint16, bool) {
		counter++
		base := 0
		if addr == c {
			base = 40000
		}
		return uint16(base + counter), true
	}
	seq := 0
	next := func() int { seq++; return seq }
	if !pairTest(sample, a, b, time.Now(), 6, next) {
		t.Error("shared counter pair rejected")
	}
	if pairTest(sample, a, c, time.Now(), 6, next) {
		t.Error("offset counters accepted")
	}
}
