package speedtrap

import (
	"net/netip"
	"testing"

	"snmpv3fp/internal/netsim"
)

func TestResolveIPv6Only(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(5))
	now := w.Cfg.StartTime
	// Mix IPv4 and IPv6 candidates: the IPv4 ones must be ignored.
	var cands []netip.Addr
	v6Candidates := 0
	for _, d := range w.Devices {
		if !d.Responds {
			continue
		}
		cands = append(cands, d.V4...)
		cands = append(cands, d.V6...)
		v6Candidates += len(d.V6)
	}
	sets := Resolve(w, cands, now)
	for _, s := range sets {
		for _, a := range s {
			if a.Is4() {
				t.Fatalf("IPv4 address %v in a Speedtrap set", a)
			}
		}
	}
	if v6Candidates > 0 && len(sets) == 0 {
		t.Error("no IPv6 sets at all")
	}
}

func TestResolvePrecision(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(5))
	now := w.Cfg.StartTime
	var cands []netip.Addr
	for _, d := range w.Devices {
		if d.Responds && d.Profile.IPID == netsim.IPIDShared {
			cands = append(cands, d.V6...)
		}
	}
	sets := Resolve(w, cands, now)
	for _, s := range sets {
		if len(s) < 2 {
			continue
		}
		first := w.DeviceAt(s[0])
		for _, a := range s[1:] {
			if w.DeviceAt(a) != first {
				t.Fatalf("false IPv6 alias: %v", s)
			}
		}
	}
}

func TestResolveEmpty(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(5))
	if got := Resolve(w, nil, w.Cfg.StartTime); len(got) != 0 {
		t.Error("empty candidates produced sets")
	}
}
