// Package speedtrap implements IPv6 alias resolution in the style of
// Speedtrap (Luckie et al., 2013), the paper's IPv6 comparison baseline.
//
// IPv6 has no per-packet identification field, but a router answering
// too-big-triggering probes emits fragments whose Identification values come
// from a per-device counter; interleaving those counters across candidate
// addresses admits the same monotonic-bounds reasoning as MIDAR. The
// simulated world models the fragment-ID counter with the same per-device
// counter machinery as the IPv4 IP-ID, so this package delegates to the
// shared resolver with IPv6 candidates.
package speedtrap

import (
	"net/netip"
	"time"

	"snmpv3fp/internal/analysis"
	"snmpv3fp/internal/baseline/midar"
	"snmpv3fp/internal/netsim"
)

// Resolve runs Speedtrap-style alias resolution over IPv6 candidates.
func Resolve(w *netsim.World, candidates []netip.Addr, now time.Time) []analysis.AddrSet {
	v6 := candidates[:0:0]
	for _, a := range candidates {
		if a.Is6() && !a.Is4In6() {
			v6 = append(v6, a)
		}
	}
	return midar.Resolve(w, v6, now, midar.DefaultConfig())
}
