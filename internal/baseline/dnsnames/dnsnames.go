// Package dnsnames implements router alias resolution from reverse-DNS
// hostnames in the style of CAIDA's Router Names dataset (Luckie et al.,
// "Learning Regexes to Extract Router Names from Hostnames", 2019) — the
// paper's Section 5.2 comparison and its only prior technique able to find
// dual-stack router aliases.
//
// Per-domain regexes extract a router name from each interface's PTR
// record; interfaces whose extracted names match are aliases. Only regexes
// with a high positive predictive value are used, which here corresponds to
// the transit-AS naming convention the simulator emits
// (`if<N>.<router>.<domain>` / `v6if<N>.<router>.<domain>`).
package dnsnames

import (
	"net/netip"
	"regexp"
	"sort"

	"snmpv3fp/internal/analysis"
	"snmpv3fp/internal/netsim"
)

// interfacePattern is the per-domain-suffix extraction regex: it strips the
// interface component and captures the router hostname plus domain.
var interfacePattern = regexp.MustCompile(`^(?:v6)?if\d+\.([a-z0-9.-]+)\.(as\d+\.(?:net|com|org|io))$`)

// ExtractRouterName applies the regex to one PTR record, returning the
// router key (hostname + domain) and whether extraction succeeded.
func ExtractRouterName(ptr string) (string, bool) {
	m := interfacePattern.FindStringSubmatch(ptr)
	if m == nil {
		return "", false
	}
	return m[1] + "." + m[2], true
}

// Resolve groups the candidate addresses by extracted router name.
// Addresses without PTR records, or whose records do not match the learned
// regexes, are excluded — exactly the blind spot the paper describes.
func Resolve(w *netsim.World, candidates []netip.Addr) []analysis.AddrSet {
	groups := map[string][]netip.Addr{}
	for _, a := range candidates {
		ptr := w.PTR(a)
		if ptr == "" {
			continue
		}
		name, ok := ExtractRouterName(ptr)
		if !ok {
			continue
		}
		groups[name] = append(groups[name], a)
	}
	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]analysis.AddrSet, 0, len(groups))
	for _, n := range names {
		out = append(out, analysis.AddrSet(groups[n]).Normalize())
	}
	return out
}
