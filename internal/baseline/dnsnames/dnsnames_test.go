package dnsnames

import (
	"net/netip"
	"testing"

	"snmpv3fp/internal/netsim"
)

func TestExtractRouterName(t *testing.T) {
	cases := []struct {
		ptr  string
		want string
		ok   bool
	}{
		{"if0.rtr12.par3.as100.net", "rtr12.par3.as100.net", true},
		{"if15.rtr12.par3.as100.net", "rtr12.par3.as100.net", true},
		{"v6if2.rtr12.par3.as100.net", "rtr12.par3.as100.net", true},
		{"host-1-2-3-4.dsl.example.com", "", false},
		{"", "", false},
		{"rtr12.par3.as100.net", "", false}, // no interface component
	}
	for _, c := range cases {
		got, ok := ExtractRouterName(c.ptr)
		if ok != c.ok || got != c.want {
			t.Errorf("ExtractRouterName(%q) = %q, %v; want %q, %v", c.ptr, got, ok, c.want, c.ok)
		}
	}
}

func TestV4AndV6InterfacesShareRouterName(t *testing.T) {
	// The technique's unique power: dual-stack alias sets.
	a, okA := ExtractRouterName("if0.rtr7.fra1.as200.org")
	b, okB := ExtractRouterName("v6if1.rtr7.fra1.as200.org")
	if !okA || !okB || a != b {
		t.Errorf("dual-stack names differ: %q vs %q", a, b)
	}
}

func TestResolveAgainstWorld(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(5))
	// All router addresses as candidates.
	var cands []netip.Addr
	for _, d := range w.Devices {
		if d.Router() {
			cands = append(cands, d.AllAddrs()...)
		}
	}
	sets := Resolve(w, cands)
	if len(sets) == 0 {
		t.Fatal("no name sets")
	}
	nonSingleton := 0
	dual := 0
	for _, s := range sets {
		first := w.DeviceAt(s[0])
		for _, a := range s[1:] {
			if w.DeviceAt(a) != first {
				t.Fatalf("name set merges different devices: %v", s)
			}
		}
		if len(s) > 1 {
			nonSingleton++
		}
		var has4, has6 bool
		for _, a := range s {
			if a.Is4() {
				has4 = true
			} else {
				has6 = true
			}
		}
		if has4 && has6 {
			dual++
		}
	}
	if nonSingleton == 0 {
		t.Error("no non-singleton name sets")
	}
	if dual == 0 {
		t.Error("no dual-stack name sets — the technique's hallmark")
	}
	// Coverage is partial: many router addresses have no usable PTR.
	covered := 0
	for _, s := range sets {
		covered += len(s)
	}
	if covered >= len(cands) {
		t.Errorf("name sets cover all %d candidates; PTR coverage should be partial", len(cands))
	}
}

func TestResolveIgnoresCPE(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(5))
	var cands []netip.Addr
	for _, d := range w.Devices {
		if d.Class == netsim.ClassCPE {
			cands = append(cands, d.AllAddrs()...)
			if len(cands) > 500 {
				break
			}
		}
	}
	if got := Resolve(w, cands); len(got) != 0 {
		t.Errorf("CPE addresses produced %d name sets", len(got))
	}
}
