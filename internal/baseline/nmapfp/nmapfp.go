// Package nmapfp models Nmap-style active OS/vendor fingerprinting, the
// paper's Section 6.2.3 comparison. Nmap needs at least one open (and one
// closed) TCP port to run its full test battery; routers rarely expose one,
// so most probes yield no result, a minority yield an exact signature match,
// and a small set end in a low-confidence best guess.
package nmapfp

import (
	"net/netip"

	"snmpv3fp/internal/netsim"
)

// Outcome classifies one fingerprint attempt, matching the three-way split
// the paper reports (22.2k no result / 2.9k match / 1.3k mismatching guess
// of 26.4k routers).
type Outcome int

// Outcomes.
const (
	// NoResult: no usable TCP service, fingerprinting impossible.
	NoResult Outcome = iota
	// ExactMatch: the signature database matched the banner/stack.
	ExactMatch
	// BestGuess: incomplete tests forced a statistical guess.
	BestGuess
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case NoResult:
		return "no result"
	case ExactMatch:
		return "exact match"
	default:
		return "best guess"
	}
}

// signatureDB maps service banners to vendors, standing in for Nmap's
// os-db (5,679 fingerprints in Nmap 7.91; ~160 Cisco, ~22 Juniper).
var signatureDB = map[string]string{
	"SSH-2.0-Cisco-1.25":    "Cisco",
	"SSH-2.0-HUAWEI-1.5":    "Huawei",
	"SSH-2.0-OpenSSH_7.5":   "Juniper", // JunOS ships a pinned OpenSSH
	"SSH-2.0-OpenSSH_8.2p1": "Net-SNMP",
	"SSH-2.0-ROSSSH":        "MikroTik",
	"SSH-2.0-OpenSSH_7.9":   "Ubiquiti",
	"SSH-2.0-OpenSSH_7.8":   "Arista",
}

// guessPool is the vendor set Nmap draws low-confidence guesses from.
var guessPool = []string{"Cisco", "Net-SNMP", "Juniper", "MikroTik", "Huawei", "ZyXEL"}

// guessProb is the probability a closed-up target still produces a
// best-guess from partial ICMP/UDP tests.
const guessProb = 0.055

// Result is one fingerprint attempt.
type Result struct {
	Outcome Outcome
	// Vendor is the inferred vendor for ExactMatch and BestGuess.
	Vendor string
}

// Fingerprint attempts to fingerprint addr. It uses only signals a remote
// prober has: TCP banner reachability and coarse stack behaviour.
func Fingerprint(w *netsim.World, addr netip.Addr) Result {
	if banner, open := w.TCPBanner(addr); open {
		if vendor, ok := signatureDB[banner]; ok {
			return Result{Outcome: ExactMatch, Vendor: vendor}
		}
		// Open port but unknown banner: Nmap falls back to a guess.
		return Result{Outcome: BestGuess, Vendor: guessPool[int(hashAddr(addr))%len(guessPool)]}
	}
	if _, responds := w.TTLSample(addr); !responds {
		return Result{Outcome: NoResult}
	}
	// Reachable but no open TCP port: usually nothing, sometimes a guess
	// from the partial probe battery.
	h := hashAddr(addr)
	if float64(h%100000)/100000 < guessProb {
		return Result{Outcome: BestGuess, Vendor: guessPool[int(h>>17)%len(guessPool)]}
	}
	return Result{Outcome: NoResult}
}

func hashAddr(a netip.Addr) uint64 {
	b := a.As16()
	var h uint64 = 1469598103934665603
	for _, x := range b {
		h ^= uint64(x)
		h *= 1099511628211
	}
	return h
}
