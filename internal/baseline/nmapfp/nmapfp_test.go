package nmapfp

import (
	"net/netip"
	"testing"

	"snmpv3fp/internal/netsim"
)

func TestOutcomeStrings(t *testing.T) {
	if NoResult.String() != "no result" || ExactMatch.String() != "exact match" || BestGuess.String() != "best guess" {
		t.Error("outcome names wrong")
	}
}

func TestFingerprintUnallocated(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(9))
	res := Fingerprint(w, netip.MustParseAddr("203.0.113.50"))
	if res.Outcome != NoResult {
		t.Errorf("unallocated outcome = %v", res.Outcome)
	}
}

func TestFingerprintDistribution(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(9))
	var noResult, match, guess int
	var correct, wrong int
	for _, d := range w.Devices {
		if !d.Router() || !d.Responds || len(d.V4) == 0 {
			continue
		}
		res := Fingerprint(w, d.V4[0])
		switch res.Outcome {
		case NoResult:
			noResult++
		case ExactMatch:
			match++
			if res.Vendor == d.Profile.Vendor {
				correct++
			} else {
				wrong++
			}
		case BestGuess:
			guess++
		}
	}
	total := noResult + match + guess
	if total == 0 {
		t.Fatal("no routers probed")
	}
	// The paper's shape: the vast majority yields no result.
	if float64(noResult)/float64(total) < 0.6 {
		t.Errorf("no-result share %d/%d too low", noResult, total)
	}
	if match == 0 {
		t.Error("no exact matches at all")
	}
	if wrong > 0 {
		t.Errorf("%d exact matches with wrong vendor (signature DB broken)", wrong)
	}
}

func TestExactMatchUsesSignatureDB(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(9))
	for _, d := range w.Devices {
		if !d.Responds || len(d.V4) == 0 {
			continue
		}
		if banner, open := w.TCPBanner(d.V4[0]); open {
			if want, ok := signatureDB[banner]; ok {
				res := Fingerprint(w, d.V4[0])
				if res.Outcome != ExactMatch || res.Vendor != want {
					t.Errorf("banner %q: got %v/%q, want exact/%q", banner, res.Outcome, res.Vendor, want)
				}
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(9))
	for _, d := range w.Devices[:50] {
		if len(d.V4) == 0 {
			continue
		}
		a := Fingerprint(w, d.V4[0])
		b := Fingerprint(w, d.V4[0])
		if a != b {
			t.Fatal("fingerprint not deterministic")
		}
	}
}
