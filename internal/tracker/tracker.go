// Package tracker implements longitudinal device monitoring on top of
// repeated SNMPv3 campaigns — the follow-up measurement the paper's
// Section 6.3 announces ("we are currently launching more campaigns and we
// will continue monitoring the last reboot time").
//
// Given a sequence of campaigns over the same target population, the
// tracker builds a per-IP timeline of (engine boots, last reboot,
// responsiveness) samples and derives reboot events (engine boots
// increments confirmed by a moved last-reboot time), identifier changes
// (the IP now belongs to a different device), and availability gaps — the
// inputs to outage analyses in the style of Luckie and Beverly's "The
// Impact of Router Outages on the AS-level Internet", which the paper
// cites.
package tracker

import (
	"net/netip"
	"sort"
	"time"

	"snmpv3fp/internal/core"
)

// Sample is one campaign's view of an IP.
type Sample struct {
	// At is the campaign's (virtual) receive time; zero for campaigns in
	// which the IP stayed silent.
	At time.Time
	// Responsive reports whether the IP answered.
	Responsive bool
	EngineID   []byte
	Boots      int64
	LastReboot time.Time
}

// Event classifies a transition between consecutive responsive samples.
type Event int

// Transition events.
const (
	// EventStable: same identity, same boot generation.
	EventStable Event = iota
	// EventReboot: same engine ID, boots incremented and the last-reboot
	// time moved forward — the device restarted.
	EventReboot
	// EventIdentityChange: a different engine ID answered — the address
	// was reassigned or the device replaced.
	EventIdentityChange
	// EventGap: the IP fell silent for at least one campaign in between.
	EventGap
)

// String names the event.
func (e Event) String() string {
	switch e {
	case EventStable:
		return "stable"
	case EventReboot:
		return "reboot"
	case EventIdentityChange:
		return "identity-change"
	case EventGap:
		return "gap"
	default:
		return "unknown"
	}
}

// Timeline is the longitudinal record of one IP.
type Timeline struct {
	IP      netip.Addr
	Samples []Sample
}

// rebootTolerance absorbs the scan-time jitter of last-reboot derivation
// when deciding whether a boots increment is a genuine restart.
const rebootTolerance = 10 * time.Second

// Transitions derives the event between each pair of consecutive
// *responsive* samples (silent campaigns in between turn the transition
// into an EventGap followed by re-evaluation).
func (tl *Timeline) Transitions() []Event {
	var events []Event
	var prev *Sample
	gapped := false
	for i := range tl.Samples {
		s := &tl.Samples[i]
		if !s.Responsive {
			if prev != nil {
				gapped = true
			}
			continue
		}
		if prev == nil {
			prev = s
			continue
		}
		switch {
		case string(prev.EngineID) != string(s.EngineID):
			events = append(events, EventIdentityChange)
		case s.Boots > prev.Boots && s.LastReboot.Sub(prev.LastReboot) > rebootTolerance:
			events = append(events, EventReboot)
		case gapped:
			events = append(events, EventGap)
		default:
			events = append(events, EventStable)
		}
		gapped = false
		prev = s
	}
	return events
}

// Reboots counts restart events across the timeline.
func (tl *Timeline) Reboots() int {
	n := 0
	for _, e := range tl.Transitions() {
		if e == EventReboot {
			n++
		}
	}
	return n
}

// Availability is the fraction of campaigns in which the IP answered.
func (tl *Timeline) Availability() float64 {
	if len(tl.Samples) == 0 {
		return 0
	}
	up := 0
	for _, s := range tl.Samples {
		if s.Responsive {
			up++
		}
	}
	return float64(up) / float64(len(tl.Samples))
}

// Build assembles timelines from an ordered campaign sequence. Only IPs
// responsive in at least one campaign appear.
func Build(campaigns []*core.Campaign) map[netip.Addr]*Timeline {
	out := map[netip.Addr]*Timeline{}
	for _, c := range campaigns {
		for ip := range c.ByIP {
			if out[ip] == nil {
				out[ip] = &Timeline{IP: ip}
			}
		}
	}
	for ip, tl := range out {
		for _, c := range campaigns {
			o, ok := c.ByIP[ip]
			if !ok {
				tl.Samples = append(tl.Samples, Sample{})
				continue
			}
			tl.Samples = append(tl.Samples, Sample{
				At:         o.ReceivedAt,
				Responsive: true,
				EngineID:   o.EngineID,
				Boots:      o.EngineBoots,
				LastReboot: o.LastReboot(),
			})
		}
	}
	return out
}

// Extend appends one campaign's responsive view of the IP to the timeline,
// in the same form Build records: incremental monitors append campaigns as
// they complete instead of rebuilding every timeline from all campaigns.
func (tl *Timeline) Extend(o *core.Observation) {
	tl.Samples = append(tl.Samples, Sample{
		At:         o.ReceivedAt,
		Responsive: true,
		EngineID:   o.EngineID,
		Boots:      o.EngineBoots,
		LastReboot: o.LastReboot(),
	})
}

// ExtendSilent appends one campaign in which the IP did not answer.
func (tl *Timeline) ExtendSilent() {
	tl.Samples = append(tl.Samples, Sample{})
}

// Extend folds one more campaign into an existing timeline set in place:
// IPs new to the population get leading silent samples for the campaigns
// they missed, responsive IPs gain a responsive sample, and every other
// timeline gains a silent one. Folding campaigns one at a time through
// Extend yields exactly what Build computes over the full sequence, so a
// long-running monitor never has to retain past campaigns.
func Extend(timelines map[netip.Addr]*Timeline, c *core.Campaign) {
	prior := 0
	for _, tl := range timelines {
		if len(tl.Samples) > prior {
			prior = len(tl.Samples)
		}
	}
	for ip, o := range c.ByIP {
		tl := timelines[ip]
		if tl == nil {
			tl = &Timeline{IP: ip}
			for i := 0; i < prior; i++ {
				tl.ExtendSilent()
			}
			timelines[ip] = tl
		}
		tl.Extend(o)
	}
	for _, tl := range timelines {
		if len(tl.Samples) == prior {
			tl.ExtendSilent()
		}
	}
}

// Summary aggregates a timeline set.
type Summary struct {
	// Tracked is the number of IPs with at least two responsive samples.
	Tracked int
	// RebootedIPs is how many tracked IPs restarted at least once.
	RebootedIPs int
	// RebootEvents is the total count of restart events.
	RebootEvents int
	// IdentityChanges counts IPs whose engine ID changed.
	IdentityChanges int
	// Gaps counts silent-then-back transitions.
	Gaps int
	// MeanAvailability averages per-IP availability over tracked IPs.
	MeanAvailability float64
}

// Summarize computes the aggregate over all timelines.
func Summarize(timelines map[netip.Addr]*Timeline) Summary {
	var sum Summary
	var avail float64
	for _, tl := range timelines {
		responsive := 0
		for _, s := range tl.Samples {
			if s.Responsive {
				responsive++
			}
		}
		if responsive < 2 {
			continue
		}
		sum.Tracked++
		avail += tl.Availability()
		reboots := 0
		for _, e := range tl.Transitions() {
			switch e {
			case EventReboot:
				reboots++
			case EventIdentityChange:
				sum.IdentityChanges++
			case EventGap:
				sum.Gaps++
			}
		}
		sum.RebootEvents += reboots
		if reboots > 0 {
			sum.RebootedIPs++
		}
	}
	if sum.Tracked > 0 {
		sum.MeanAvailability = avail / float64(sum.Tracked)
	}
	return sum
}

// SortedIPs returns the timeline keys in address order, for deterministic
// iteration in reports.
func SortedIPs(timelines map[netip.Addr]*Timeline) []netip.Addr {
	out := make([]netip.Addr, 0, len(timelines))
	for ip := range timelines {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
