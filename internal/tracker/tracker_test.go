package tracker

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"snmpv3fp/internal/core"
)

var (
	ip1 = netip.MustParseAddr("192.0.2.1")
	ip2 = netip.MustParseAddr("192.0.2.2")
	t0  = time.Date(2021, 4, 16, 0, 0, 0, 0, time.UTC)
)

func campaignOf(obs ...*core.Observation) *core.Campaign {
	c := &core.Campaign{ByIP: map[netip.Addr]*core.Observation{}}
	for _, o := range obs {
		c.ByIP[o.IP] = o
	}
	return c
}

func observation(ip netip.Addr, id string, boots int64, reboot, at time.Time) *core.Observation {
	return &core.Observation{
		IP: ip, EngineID: []byte(id), EngineBoots: boots,
		EngineTime: int64(at.Sub(reboot) / time.Second), ReceivedAt: at,
	}
}

func TestStableTimeline(t *testing.T) {
	reboot := t0.Add(-100 * 24 * time.Hour)
	c1 := campaignOf(observation(ip1, "dev", 5, reboot, t0))
	c2 := campaignOf(observation(ip1, "dev", 5, reboot, t0.Add(6*24*time.Hour)))
	c3 := campaignOf(observation(ip1, "dev", 5, reboot, t0.Add(12*24*time.Hour)))
	tls := Build([]*core.Campaign{c1, c2, c3})
	tl := tls[ip1]
	if tl == nil {
		t.Fatal("no timeline")
	}
	events := tl.Transitions()
	if len(events) != 2 || events[0] != EventStable || events[1] != EventStable {
		t.Errorf("events = %v", events)
	}
	if tl.Reboots() != 0 {
		t.Error("phantom reboot")
	}
	if tl.Availability() != 1.0 {
		t.Errorf("availability = %v", tl.Availability())
	}
}

func TestRebootDetection(t *testing.T) {
	reboot1 := t0.Add(-100 * 24 * time.Hour)
	reboot2 := t0.Add(3 * 24 * time.Hour) // restarted between campaigns
	c1 := campaignOf(observation(ip1, "dev", 5, reboot1, t0))
	c2 := campaignOf(observation(ip1, "dev", 6, reboot2, t0.Add(6*24*time.Hour)))
	tls := Build([]*core.Campaign{c1, c2})
	events := tls[ip1].Transitions()
	if len(events) != 1 || events[0] != EventReboot {
		t.Fatalf("events = %v", events)
	}
}

func TestBootsJitterIsNotReboot(t *testing.T) {
	// Boots increments but the last reboot barely moved (< tolerance):
	// treat as stable (derivation jitter, not a restart).
	reboot := t0.Add(-100 * 24 * time.Hour)
	c1 := campaignOf(observation(ip1, "dev", 5, reboot, t0))
	c2 := campaignOf(observation(ip1, "dev", 6, reboot.Add(2*time.Second), t0.Add(24*time.Hour)))
	events := Build([]*core.Campaign{c1, c2})[ip1].Transitions()
	if events[0] == EventReboot {
		t.Error("jitter classified as reboot")
	}
}

func TestIdentityChange(t *testing.T) {
	reboot := t0.Add(-10 * 24 * time.Hour)
	c1 := campaignOf(observation(ip1, "devA", 5, reboot, t0))
	c2 := campaignOf(observation(ip1, "devB", 2, reboot, t0.Add(24*time.Hour)))
	events := Build([]*core.Campaign{c1, c2})[ip1].Transitions()
	if len(events) != 1 || events[0] != EventIdentityChange {
		t.Fatalf("events = %v", events)
	}
}

func TestGapDetection(t *testing.T) {
	reboot := t0.Add(-10 * 24 * time.Hour)
	c1 := campaignOf(observation(ip1, "dev", 5, reboot, t0))
	c2 := campaignOf() // silent
	c3 := campaignOf(observation(ip1, "dev", 5, reboot, t0.Add(12*24*time.Hour)))
	tl := Build([]*core.Campaign{c1, c2, c3})[ip1]
	events := tl.Transitions()
	if len(events) != 1 || events[0] != EventGap {
		t.Fatalf("events = %v", events)
	}
	if av := tl.Availability(); av < 0.66 || av > 0.67 {
		t.Errorf("availability = %v", av)
	}
}

func TestSummarize(t *testing.T) {
	rebootA := t0.Add(-100 * 24 * time.Hour)
	rebootA2 := t0.Add(2 * 24 * time.Hour)
	c1 := campaignOf(
		observation(ip1, "devA", 5, rebootA, t0),
		observation(ip2, "devB", 1, rebootA, t0),
	)
	c2 := campaignOf(
		observation(ip1, "devA", 6, rebootA2, t0.Add(6*24*time.Hour)),
		observation(ip2, "devC", 9, rebootA, t0.Add(6*24*time.Hour)),
	)
	sum := Summarize(Build([]*core.Campaign{c1, c2}))
	if sum.Tracked != 2 {
		t.Fatalf("tracked = %d", sum.Tracked)
	}
	if sum.RebootedIPs != 1 || sum.RebootEvents != 1 {
		t.Errorf("reboots = %d/%d", sum.RebootedIPs, sum.RebootEvents)
	}
	if sum.IdentityChanges != 1 {
		t.Errorf("identity changes = %d", sum.IdentityChanges)
	}
	if sum.MeanAvailability != 1.0 {
		t.Errorf("availability = %v", sum.MeanAvailability)
	}
}

func TestSummarizeSkipsSingleSample(t *testing.T) {
	c1 := campaignOf(observation(ip1, "dev", 5, t0.Add(-time.Hour), t0))
	c2 := campaignOf() // silent second campaign
	sum := Summarize(Build([]*core.Campaign{c1, c2}))
	if sum.Tracked != 0 {
		t.Errorf("tracked = %d", sum.Tracked)
	}
}

func TestSortedIPs(t *testing.T) {
	c := campaignOf(
		observation(ip2, "b", 1, t0.Add(-time.Hour), t0),
		observation(ip1, "a", 1, t0.Add(-time.Hour), t0),
	)
	ips := SortedIPs(Build([]*core.Campaign{c}))
	if len(ips) != 2 || ips[0] != ip1 || ips[1] != ip2 {
		t.Errorf("ips = %v", ips)
	}
}

func TestEventStrings(t *testing.T) {
	for e, want := range map[Event]string{
		EventStable: "stable", EventReboot: "reboot",
		EventIdentityChange: "identity-change", EventGap: "gap",
	} {
		if e.String() != want {
			t.Errorf("%d = %q", int(e), e.String())
		}
	}
}

// TestExtendFoldMatchesBuild is the merge-path contract: folding campaigns
// one at a time through Extend must produce exactly what Build produces over
// the whole slice, including IPs that appear late (padded with leading
// silent samples) and IPs that go silent mid-sequence.
func TestExtendFoldMatchesBuild(t *testing.T) {
	reboot := t0.Add(-100 * 24 * time.Hour)
	day := 24 * time.Hour
	ip3 := netip.MustParseAddr("192.0.2.3")
	campaigns := []*core.Campaign{
		campaignOf(
			observation(ip1, "dev1", 5, reboot, t0),
			observation(ip2, "dev2", 2, reboot, t0),
		),
		campaignOf( // ip2 silent, ip3 appears
			observation(ip1, "dev1", 5, reboot, t0.Add(6*day)),
			observation(ip3, "dev3", 1, t0.Add(3*day), t0.Add(6*day)),
		),
		campaignOf( // ip1 rebooted, ip2 back, ip3 silent
			observation(ip1, "dev1", 6, t0.Add(9*day), t0.Add(12*day)),
			observation(ip2, "dev2", 2, reboot, t0.Add(12*day)),
		),
	}

	want := Build(campaigns)
	got := map[netip.Addr]*Timeline{}
	for _, c := range campaigns {
		Extend(got, c)
	}

	if len(got) != len(want) {
		t.Fatalf("timelines: got %d want %d", len(got), len(want))
	}
	for ip, w := range want {
		g := got[ip]
		if g == nil {
			t.Fatalf("missing %v", ip)
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%v diverges:\n got %+v\nwant %+v", ip, g, w)
		}
		if g.Reboots() != w.Reboots() || g.Availability() != w.Availability() {
			t.Errorf("%v summary diverges", ip)
		}
	}
}

// TestExtendIncremental checks appending a campaign to an existing fold
// equals rebuilding from scratch — the "append without rebuilding" use.
func TestExtendIncremental(t *testing.T) {
	reboot := t0.Add(-100 * 24 * time.Hour)
	day := 24 * time.Hour
	c1 := campaignOf(observation(ip1, "dev", 5, reboot, t0))
	c2 := campaignOf(observation(ip1, "dev", 5, reboot, t0.Add(6*day)))
	c3 := campaignOf(
		observation(ip1, "dev", 5, reboot, t0.Add(12*day)),
		observation(ip2, "new", 1, t0.Add(10*day), t0.Add(12*day)),
	)

	fold := Build([]*core.Campaign{c1, c2})
	Extend(fold, c3)
	want := Build([]*core.Campaign{c1, c2, c3})
	if !reflect.DeepEqual(fold, want) {
		t.Fatalf("incremental fold diverges:\n got %+v\nwant %+v", fold, want)
	}
	// The late joiner is padded to full length with silent samples.
	if n := len(fold[ip2].Samples); n != 3 {
		t.Fatalf("padded samples = %d, want 3", n)
	}
	if fold[ip2].Samples[0].Responsive || fold[ip2].Samples[1].Responsive {
		t.Fatal("leading pad samples must be silent")
	}
}
