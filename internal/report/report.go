// Package report renders experiment results as paper-style text artifacts:
// aligned tables, ECDF point series, bar charts, and heatmaps.
package report

import (
	"fmt"
	"strings"

	"snmpv3fp/internal/analysis"
)

// Table renders rows of cells with aligned columns. The first row is the
// header, separated by a rule.
func Table(title string, rows [][]string) string {
	if len(rows) == 0 {
		return title + "\n(empty)\n"
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(rows[0])
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range rows[1:] {
		writeRow(row)
	}
	return b.String()
}

// ECDFSeries renders one or more named ECDFs as a table of values at fixed
// probabilities, the text analogue of the paper's CDF figures.
func ECDFSeries(title string, names []string, curves []*analysis.ECDF, format string) string {
	probs := []float64{0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00}
	rows := [][]string{append([]string{"quantile"}, names...)}
	for _, p := range probs {
		row := []string{fmt.Sprintf("p%02.0f", p*100)}
		for _, c := range curves {
			if c == nil || c.N() == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf(format, c.Quantile(p)))
		}
		rows = append(rows, row)
	}
	row := []string{"N"}
	for _, c := range curves {
		if c == nil {
			row = append(row, "-")
			continue
		}
		row = append(row, fmt.Sprintf("%d", c.N()))
	}
	rows = append(rows, row)
	return Table(title, rows)
}

// Bar renders a horizontal bar chart of labeled counts, largest first
// (ordering is the caller's responsibility).
func Bar(title string, labels []string, counts []int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	maxCount := 1
	maxLabel := 0
	for i, c := range counts {
		if c > maxCount {
			maxCount = c
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	const width = 40
	for i, c := range counts {
		n := c * width / maxCount
		fmt.Fprintf(&b, "%-*s %7d %s\n", maxLabel, labels[i], c, strings.Repeat("#", n))
	}
	return b.String()
}

// Heatmap renders a row-label × column-label percentage matrix (the
// paper's Figures 15 and 16).
func Heatmap(title string, rowLabels, colLabels []string, cells [][]float64) string {
	rows := [][]string{append([]string{""}, colLabels...)}
	for i, rl := range rowLabels {
		row := []string{rl}
		for j := range colLabels {
			row = append(row, fmt.Sprintf("%5.1f", cells[i][j]))
		}
		rows = append(rows, row)
	}
	return Table(title, rows)
}

// Count formats large counts with an SI-ish suffix, as the paper's prose
// does (12.5M, 140k).
func Count(n int) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.0fk", float64(n)/1e3)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
