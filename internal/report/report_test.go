package report

import (
	"strings"
	"testing"

	"snmpv3fp/internal/analysis"
)

func TestTable(t *testing.T) {
	out := Table("Title", [][]string{
		{"col1", "column2"},
		{"a", "b"},
		{"longer-cell", "x"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "col1") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("rule = %q", lines[2])
	}
	// Columns align: "b" starts where "column2" starts.
	if strings.Index(lines[1], "column2") != strings.Index(lines[3], "b") {
		t.Error("columns misaligned")
	}
	if Table("t", nil) == "" {
		t.Error("empty table should render something")
	}
}

func TestECDFSeries(t *testing.T) {
	e := analysis.NewECDF([]float64{1, 2, 3, 4, 5})
	out := ECDFSeries("ecdf", []string{"a", "b"}, []*analysis.ECDF{e, nil}, "%.1f")
	if !strings.Contains(out, "p50") || !strings.Contains(out, "3.0") {
		t.Errorf("series missing median:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("nil curve should render dashes")
	}
	if !strings.Contains(out, "N") {
		t.Error("missing sample count row")
	}
}

func TestBar(t *testing.T) {
	out := Bar("bars", []string{"cisco", "juniper"}, []int{100, 25})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	ciscoHashes := strings.Count(lines[1], "#")
	juniperHashes := strings.Count(lines[2], "#")
	if ciscoHashes != 40 || juniperHashes != 10 {
		t.Errorf("bar lengths = %d, %d", ciscoHashes, juniperHashes)
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap("hm", []string{"EU", "NA"}, []string{"Cisco", "Huawei"},
		[][]float64{{60.5, 20.25}, {90, 0}})
	if !strings.Contains(out, "60.5") || !strings.Contains(out, "90.0") {
		t.Errorf("heatmap cells missing:\n%s", out)
	}
	if !strings.Contains(out, "EU") || !strings.Contains(out, "Huawei") {
		t.Error("labels missing")
	}
}

func TestCount(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1500, "1.5k"},
		{12500, "12k"},
		{999999, "1000k"},
		{1500000, "1.50M"},
		{12500000, "12.5M"},
	}
	for _, c := range cases {
		if got := Count(c.n); got != c.want {
			t.Errorf("Count(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
