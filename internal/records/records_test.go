package records

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"snmpv3fp/internal/core"
	"snmpv3fp/internal/engineid"
)

func sampleCampaign() *core.Campaign {
	t0 := time.Date(2021, 4, 16, 12, 0, 0, 0, time.UTC)
	c := &core.Campaign{ByIP: map[netip.Addr]*core.Observation{}}
	add := func(ip string, id []byte, boots, et int64, pkts int) {
		a := netip.MustParseAddr(ip)
		c.ByIP[a] = &core.Observation{
			IP: a, EngineID: id, EngineBoots: boots, EngineTime: et,
			ReceivedAt: t0, Packets: pkts,
		}
		c.TotalPackets += pkts
	}
	add("192.0.2.1", engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 1, 2, 3}), 5, 3600, 1)
	add("192.0.2.9", nil, 0, 0, 3)
	add("2001:db8::7", engineid.NewNetSNMP([8]byte{1, 2, 3, 4, 5, 6, 7, 8}), 2, 99, 1)
	return c
}

func TestRoundTrip(t *testing.T) {
	c := sampleCampaign()
	var buf bytes.Buffer
	if err := WriteCampaign(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ByIP) != len(c.ByIP) {
		t.Fatalf("IPs = %d", len(got.ByIP))
	}
	for ip, want := range c.ByIP {
		o := got.ByIP[ip]
		if o == nil {
			t.Fatalf("missing %v", ip)
		}
		if string(o.EngineID) != string(want.EngineID) ||
			o.EngineBoots != want.EngineBoots ||
			o.EngineTime != want.EngineTime ||
			!o.ReceivedAt.Equal(want.ReceivedAt) ||
			o.Packets != want.Packets {
			t.Errorf("%v: %+v != %+v", ip, o, want)
		}
	}
	if got.TotalPackets != c.TotalPackets {
		t.Errorf("total packets = %d", got.TotalPackets)
	}
}

func TestWriteDeterministic(t *testing.T) {
	c := sampleCampaign()
	var a, b bytes.Buffer
	WriteCampaign(&a, c)
	WriteCampaign(&b, c)
	if a.String() != b.String() {
		t.Error("output not deterministic")
	}
	// Sorted by IP: 192.0.2.1 first, v6 last.
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], `"192.0.2.1"`) || !strings.Contains(lines[2], "2001:db8::7") {
		t.Errorf("ordering wrong:\n%s", a.String())
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	in := `{"ip":"192.0.2.1","engine_boots":1,"engine_time":2,"received_at":"2021-04-16T00:00:00Z"}

{"ip":"192.0.2.2","engine_boots":3,"engine_time":4,"received_at":"2021-04-16T00:00:01Z"}
`
	c, err := ReadCampaign(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ByIP) != 2 {
		t.Errorf("IPs = %d", len(c.ByIP))
	}
	// Packets defaults to 1 when omitted.
	if c.ByIP[netip.MustParseAddr("192.0.2.1")].Packets != 1 {
		t.Error("default packets wrong")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"ip":"not-an-ip","received_at":"2021-04-16T00:00:00Z"}`,
		`{"ip":"192.0.2.1","engine_id":"zz","received_at":"2021-04-16T00:00:00Z"}`,
		`{"ip":"192.0.2.1","received_at":"yesterday"}`,
	}
	for _, in := range cases {
		if _, err := ReadCampaign(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

// TestReadLongLines exercises lines past bufio.Scanner's 64 KiB default: a
// record with a pathologically large engine ID must still round-trip.
func TestReadLongLines(t *testing.T) {
	big := bytes.Repeat([]byte{0xAB}, 80*1024) // 160 KiB of hex on the wire
	c := &core.Campaign{ByIP: map[netip.Addr]*core.Observation{}}
	a := netip.MustParseAddr("192.0.2.1")
	c.ByIP[a] = &core.Observation{
		IP: a, EngineID: big, EngineBoots: 1, EngineTime: 2,
		ReceivedAt: time.Date(2021, 4, 16, 0, 0, 0, 0, time.UTC), Packets: 1,
	}
	c.TotalPackets = 1
	var buf bytes.Buffer
	if err := WriteCampaign(&buf, c); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 128*1024 {
		t.Fatalf("line too short to exercise the limit: %d bytes", buf.Len())
	}
	got, err := ReadCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.ByIP[a].EngineID, big) {
		t.Fatal("big engine ID did not round-trip")
	}
}

// TestReadOversizedLine shrinks MaxLine and checks the failure names the
// offending line instead of surfacing a bare bufio.ErrTooLong.
func TestReadOversizedLine(t *testing.T) {
	defer func(old int) { MaxLine = old }(MaxLine)
	MaxLine = 256
	in := `{"ip":"192.0.2.1","engine_boots":1,"engine_time":2,"received_at":"2021-04-16T00:00:00Z"}
{"ip":"192.0.2.2","engine_id":"` + strings.Repeat("ab", 200) + `","engine_boots":1,"engine_time":2,"received_at":"2021-04-16T00:00:00Z"}
`
	_, err := ReadCampaign(strings.NewReader(in))
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks line number: %v", err)
	}
}

func TestRecordQuickRoundTrip(t *testing.T) {
	f := func(ipv4 [4]byte, id []byte, boots, et int32, pkts uint8) bool {
		o := &core.Observation{
			IP:          netip.AddrFrom4(ipv4),
			EngineID:    id,
			EngineBoots: int64(boots),
			EngineTime:  int64(et),
			ReceivedAt:  time.Date(2021, 4, 16, 0, 0, 0, 0, time.UTC).Add(time.Duration(et) * time.Millisecond),
			Packets:     int(pkts) + 1,
		}
		got, err := FromObservation(o).ToObservation()
		if err != nil {
			return false
		}
		return got.IP == o.IP &&
			string(got.EngineID) == string(o.EngineID) &&
			got.EngineBoots == o.EngineBoots &&
			got.EngineTime == o.EngineTime &&
			got.ReceivedAt.Equal(o.ReceivedAt) &&
			got.Packets == o.Packets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
