// Package records persists scan campaigns as NDJSON — one observation per
// line — so campaigns can be captured once (cmd/snmpscan -json) and
// analyzed offline (cmd/snmpalias), mirroring how the paper's pipeline
// separates scanning from analysis.
package records

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"time"

	"snmpv3fp/internal/core"
)

// Record is the NDJSON form of one observation.
type Record struct {
	IP          string `json:"ip"`
	EngineID    string `json:"engine_id,omitempty"` // lowercase hex
	EngineBoots int64  `json:"engine_boots"`
	EngineTime  int64  `json:"engine_time"`
	ReceivedAt  string `json:"received_at"` // RFC 3339 with nanoseconds
	Packets     int    `json:"packets"`
	// Inconsistent marks engine ID flapping within the campaign.
	Inconsistent bool `json:"inconsistent,omitempty"`
}

// FromObservation converts an observation.
func FromObservation(o *core.Observation) Record {
	return Record{
		IP:           o.IP.String(),
		EngineID:     hex.EncodeToString(o.EngineID),
		EngineBoots:  o.EngineBoots,
		EngineTime:   o.EngineTime,
		ReceivedAt:   o.ReceivedAt.UTC().Format(time.RFC3339Nano),
		Packets:      o.Packets,
		Inconsistent: o.Inconsistent,
	}
}

// ToObservation converts back.
func (r Record) ToObservation() (*core.Observation, error) {
	ip, err := netip.ParseAddr(r.IP)
	if err != nil {
		return nil, fmt.Errorf("records: bad ip %q: %w", r.IP, err)
	}
	var engineID []byte
	if r.EngineID != "" {
		engineID, err = hex.DecodeString(r.EngineID)
		if err != nil {
			return nil, fmt.Errorf("records: bad engine id %q: %w", r.EngineID, err)
		}
	}
	at, err := time.Parse(time.RFC3339Nano, r.ReceivedAt)
	if err != nil {
		return nil, fmt.Errorf("records: bad timestamp %q: %w", r.ReceivedAt, err)
	}
	packets := r.Packets
	if packets == 0 {
		packets = 1
	}
	return &core.Observation{
		IP:           ip,
		EngineID:     engineID,
		EngineBoots:  r.EngineBoots,
		EngineTime:   r.EngineTime,
		ReceivedAt:   at,
		Packets:      packets,
		Inconsistent: r.Inconsistent,
	}, nil
}

// WriteCampaign streams a campaign as NDJSON, ordered by IP for
// reproducible output.
func WriteCampaign(w io.Writer, c *core.Campaign) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ip := range c.SortedIPs() {
		if err := enc.Encode(FromObservation(c.ByIP[ip])); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MaxLine bounds one NDJSON line. Engine IDs are tiny, but campaigns
// captured through hostile paths can carry records amplified far past
// bufio.Scanner's 64 KiB default; lines beyond this limit abort the read
// with a line-numbered error rather than a bare bufio.ErrTooLong.
var MaxLine = 16 << 20

// ReadCampaign loads a campaign from NDJSON. Blank lines are skipped;
// malformed or oversized lines abort with an error naming the line number.
func ReadCampaign(r io.Reader) (*core.Campaign, error) {
	c := &core.Campaign{ByIP: map[netip.Addr]*core.Observation{}}
	sc := bufio.NewScanner(r)
	// The scanner's cap is max(cap(buf), limit), so the initial buffer must
	// not exceed MaxLine or a smaller limit would be ignored.
	sc.Buffer(make([]byte, 0, min(64*1024, MaxLine)), MaxLine)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("records: line %d: %w", line, err)
		}
		obs, err := rec.ToObservation()
		if err != nil {
			return nil, fmt.Errorf("records: line %d: %w", line, err)
		}
		c.ByIP[obs.IP] = obs
		c.TotalPackets += obs.Packets
	}
	if err := sc.Err(); err != nil {
		// The scanner dies on the line after the last one it delivered.
		return nil, fmt.Errorf("records: line %d: %w", line+1, err)
	}
	return c, nil
}
