package obs

import (
	"testing"
	"time"
)

// stepClock is a deterministic test clock: every Now() reading advances it
// by a fixed step, so span durations are exact.
type stepClock struct {
	now  time.Time
	step time.Duration
}

func (c *stepClock) Now() time.Time {
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

func TestTracerDeterministicDurations(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, &stepClock{now: time.Unix(0, 0), step: 250 * time.Millisecond})
	for i := 0; i < 3; i++ {
		sp := tr.Start("scan.pass", L("pass", "0"))
		if d := sp.End(); d != 250*time.Millisecond {
			t.Fatalf("span %d: %v", i, d)
		}
	}
	h := r.Histogram(SpanFamily, nil, L("span", "scan.pass"), L("pass", "0"))
	if h.Count() != 3 {
		t.Fatalf("span histogram count: %d", h.Count())
	}
	if got, want := h.Sum(), 0.75; got != want {
		t.Fatalf("span histogram sum: %v want %v", got, want)
	}
}

func TestTracerLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, nil)
	tr.Start("x", L("b", "2"), L("a", "1")).End()
	// Same series regardless of caller label order (canonicalized by key).
	h := r.Histogram(SpanFamily, nil, L("a", "1"), L("b", "2"), L("span", "x"))
	if h.Count() != 1 {
		t.Fatalf("label canonicalization broken: count %d", h.Count())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("anything", L("k", "v"))
	if d := sp.End(); d != 0 {
		t.Fatalf("nil tracer span duration: %v", d)
	}
	if tr.Clock() == nil {
		t.Fatal("nil tracer must still expose a clock")
	}
}

func TestSpanClampsNegativeDurations(t *testing.T) {
	r := NewRegistry()
	c := &stepClock{now: time.Unix(100, 0), step: -time.Second}
	tr := NewTracer(r, c)
	if d := tr.Start("back").End(); d != 0 {
		t.Fatalf("negative span must clamp to 0, got %v", d)
	}
}
