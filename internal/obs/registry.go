// Package obs is the observability layer: a dependency-free metrics
// registry (counters, gauges, histograms with fixed log-scale buckets) and
// lightweight span tracing (span.go) shared by the scanner, the simulator,
// the store and the serving layer.
//
// The hot paths are lock-free: counters and gauges are single atomics,
// histograms are an atomic per bucket, and the metric handles returned by
// the registry are cached by callers so the registry map is only consulted
// at setup time. Reads are snapshot-on-read: WritePrometheus and Snapshot
// observe each atomic once, so an exposition scrape never blocks a sender.
//
// Every method is safe on a nil *Registry and on the nil metric handles a
// nil registry returns, so instrumented code never branches on "is
// observability enabled" — disabled instrumentation costs one predictable
// nil check per event.
//
// Metric naming follows the Prometheus conventions documented in DESIGN.md
// §10: every family is prefixed `snmpfp_`, counters end in `_total`,
// durations are histograms in seconds ending in `_seconds`.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value metric dimension.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// MetricType distinguishes the exposition families.
type MetricType int

// Family types, matching the Prometheus text exposition TYPE keywords.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing metric. The zero value is usable;
// a nil *Counter is a no-op.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by delta.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.n.Add(delta)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increases the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current reading (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper limits (Prometheus `le` semantics); an implicit +Inf bucket catches
// the overflow. A nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // math.Float64bits of the running sum
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose inclusive upper bound admits v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshotBuckets returns cumulative per-bound counts plus the total.
func (h *Histogram) snapshotBuckets() (cum []uint64, total uint64) {
	cum = make([]uint64, len(h.bounds))
	for i := range h.bounds {
		total += h.counts[i].Load()
		cum[i] = total
	}
	total += h.counts[len(h.bounds)].Load()
	return cum, total
}

// ExpBuckets returns n log-scale bucket bounds: start, start*factor,
// start*factor², … — the fixed-geometry histograms the registry uses for
// durations.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefDurationBuckets spans 100µs to ~3.7h in ×2 steps: wide enough that a
// virtual multi-day campaign's pass spans land in real buckets, fine enough
// that sub-millisecond serve latencies resolve.
var DefDurationBuckets = ExpBuckets(100e-6, 2, 27)

// series is one exported time series: a concrete metric or a read-time
// callback republishing a counter maintained elsewhere.
type series struct {
	labels  string // canonical rendered label set, "" when unlabelled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cfn     func() uint64
	gfn     func() float64
}

type family struct {
	name   string
	typ    MetricType
	help   string
	bounds []float64 // histograms only
	series map[string]*series
}

// Registry holds metric families and serves snapshots of them. All methods
// are safe for concurrent use, and safe on a nil receiver (returning nil
// metric handles, which are themselves no-ops).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family returns (creating if needed) the named family, panicking on a type
// clash: two call sites disagreeing about a metric's type is a programming
// error no fallback can hide.
func (r *Registry) getFamily(name string, typ MetricType, bounds []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, typ: typ, bounds: bounds, series: map[string]*series{}}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %v and %v", name, f.typ, typ))
	}
	return f
}

// Help attaches (or replaces) a family's HELP text. Creates nothing.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = text
	}
}

// Counter returns the counter for name+labels, creating it on first use.
// Repeated calls with the same name and labels return the same counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, TypeCounter, nil)
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, counter: &Counter{}}
		f.series[key] = s
	}
	return s.counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, TypeGauge, nil)
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, gauge: &Gauge{}}
		f.series[key] = s
	}
	return s.gauge
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket bounds on first use (nil bounds select DefDurationBuckets).
// The family's bounds are fixed by the first creation.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefDurationBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, TypeHistogram, bounds)
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, hist: &Histogram{
			bounds: f.bounds,
			counts: make([]atomic.Uint64, len(f.bounds)+1),
		}}
		f.series[key] = s
	}
	return s.hist
}

// CounterFunc registers a read-time counter callback: the series' value is
// f() at each scrape. Used to republish counters that already exist as
// atomics elsewhere (netsim fault tallies, store totals) without double
// accounting. Re-registering the same series replaces the callback.
func (r *Registry) CounterFunc(name string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, TypeCounter, nil)
	key := renderLabels(labels)
	f.series[key] = &series{labels: key, cfn: fn}
}

// GaugeFunc registers a read-time gauge callback, with the same replacement
// semantics as CounterFunc.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, TypeGauge, nil)
	key := renderLabels(labels)
	f.series[key] = &series{labels: key, gfn: fn}
}

// Point is one exported sample in a Snapshot.
type Point struct {
	// Name is the family name; histogram points use the family name with
	// the _sum/_count/_bucket suffix conventions flattened into Value,
	// Count, Sum and Buckets instead.
	Name   string
	Labels string // canonical rendered label set, "" when unlabelled
	Type   MetricType
	// Value carries counter and gauge readings.
	Value float64
	// Count, Sum and Buckets carry histogram readings; Buckets is
	// cumulative, parallel to Bounds.
	Count   uint64
	Sum     float64
	Bounds  []float64
	Buckets []uint64
}

// Snapshot returns every series' current reading, sorted by name then
// label set. Callback series are evaluated during the call; the registry
// lock is NOT held while user callbacks run, so a callback may itself take
// locks that instrumented code holds while updating metrics.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	type pending struct {
		p   Point
		s   *series
		typ MetricType
	}
	r.mu.Lock()
	var work []pending
	for _, f := range r.families {
		for _, s := range f.series {
			work = append(work, pending{
				p:   Point{Name: f.name, Labels: s.labels, Type: f.typ, Bounds: f.bounds},
				s:   s,
				typ: f.typ,
			})
		}
	}
	r.mu.Unlock()

	out := make([]Point, 0, len(work))
	for _, w := range work {
		p := w.p
		switch {
		case w.s.counter != nil:
			p.Value = float64(w.s.counter.Value())
		case w.s.gauge != nil:
			p.Value = w.s.gauge.Value()
		case w.s.cfn != nil:
			p.Value = float64(w.s.cfn())
		case w.s.gfn != nil:
			p.Value = w.s.gfn()
		case w.s.hist != nil:
			p.Buckets, p.Count = w.s.hist.snapshotBuckets()
			p.Sum = w.s.hist.Sum()
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// Value returns the current reading of the series name+labels, summing
// counters and gauges as float64 (histograms report their count). Missing
// series read 0. Intended for tests and reconciliation checks.
func (r *Registry) Value(name string, labels ...Label) float64 {
	key := renderLabels(labels)
	for _, p := range r.Snapshot() {
		if p.Name == name && p.Labels == key {
			if p.Type == TypeHistogram {
				return float64(p.Count)
			}
			return p.Value
		}
	}
	return 0
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families sorted by name, series sorted by label
// set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	points := r.Snapshot()
	r.mu.Lock()
	helps := make(map[string]string, len(r.families))
	for name, f := range r.families {
		helps[name] = f.help
	}
	r.mu.Unlock()

	var b strings.Builder
	lastFamily := ""
	for _, p := range points {
		if p.Name != lastFamily {
			if help := helps[p.Name]; help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", p.Name, help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", p.Name, p.Type)
			lastFamily = p.Name
		}
		switch p.Type {
		case TypeHistogram:
			for i, bound := range p.Bounds {
				fmt.Fprintf(&b, "%s_bucket%s %d\n",
					p.Name, withLE(p.Labels, formatFloat(bound)), p.Buckets[i])
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", p.Name, withLE(p.Labels, "+Inf"), p.Count)
			fmt.Fprintf(&b, "%s_sum%s %s\n", p.Name, bracket(p.Labels), formatFloat(p.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", p.Name, bracket(p.Labels), p.Count)
		default:
			fmt.Fprintf(&b, "%s%s %s\n", p.Name, bracket(p.Labels), formatFloat(p.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// renderLabels canonicalizes a label set: sorted by key, escaped, rendered
// as `k="v",k2="v2"` without the surrounding braces.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func bracket(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// withLE appends the histogram bucket's le label to a rendered label set.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return "{" + labels + `,le="` + le + `"}`
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
