package obs

import "time"

// Clock supplies span timestamps. It is satisfied by vclock.Clock (both the
// wall clock and the simulator's virtual clock), declared locally so obs
// stays dependency-free. Spans timed on the virtual clock are deterministic:
// a simulated campaign exports identical span histograms on every run and
// for every worker count.
type Clock interface {
	Now() time.Time
}

// wallClock is the default span clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Tracer times named spans and exports their durations as histograms in
// the `snmpfp_span_duration_seconds` family, one series per span name. A
// nil *Tracer is a no-op.
type Tracer struct {
	reg   *Registry
	clock Clock
}

// SpanFamily is the histogram family spans export into.
const SpanFamily = "snmpfp_span_duration_seconds"

// NewTracer builds a tracer over the registry. A nil clock selects the wall
// clock; simulated pipelines pass their vclock.Virtual so span durations
// stay deterministic.
func NewTracer(reg *Registry, clock Clock) *Tracer {
	if clock == nil {
		clock = wallClock{}
	}
	return &Tracer{reg: reg, clock: clock}
}

// Clock returns the tracer's clock (wall clock for a nil tracer), so
// instrumented code can stamp ad-hoc durations consistently with its spans.
func (t *Tracer) Clock() Clock {
	if t == nil {
		return wallClock{}
	}
	return t.clock
}

// Span is one in-flight timed region. The zero Span (and any Span from a
// nil tracer) ends harmlessly.
type Span struct {
	hist  *Histogram
	clock Clock
	start time.Time
}

// Start opens a span. name becomes the `span` label on the duration
// histogram; extra labels are appended.
func (t *Tracer) Start(name string, labels ...Label) Span {
	if t == nil {
		return Span{}
	}
	all := append([]Label{L("span", name)}, labels...)
	return Span{
		hist:  t.reg.Histogram(SpanFamily, nil, all...),
		clock: t.clock,
		start: t.clock.Now(),
	}
}

// End closes the span, records its duration and returns it. Negative
// durations (a virtual clock stepped backwards between campaigns) are
// clamped to zero rather than polluting the histogram.
func (s Span) End() time.Duration {
	if s.clock == nil {
		return 0
	}
	d := s.clock.Now().Sub(s.start)
	if d < 0 {
		d = 0
	}
	s.hist.ObserveDuration(d)
	return d
}
