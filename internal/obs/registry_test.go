package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("snmpfp_test_events_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter: %d", got)
	}
	if again := r.Counter("snmpfp_test_events_total"); again != c {
		t.Fatal("same name+labels must return the same counter")
	}
	if other := r.Counter("snmpfp_test_events_total", L("k", "v")); other == c {
		t.Fatal("distinct label sets must be distinct series")
	}

	g := r.Gauge("snmpfp_test_depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge: %v", got)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound (`le`)
// bucketing rule on exact boundary values.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	cases := []struct {
		v    float64
		want int // bucket index; len(bounds) = +Inf
	}{
		{0, 0},
		{0.5, 0},
		{1, 0}, // boundary lands in its own bucket (le is inclusive)
		{1.0000001, 1},
		{2, 1},
		{3, 2},
		{4, 2},
		{7.999, 3},
		{8, 3},
		{8.001, 4},
		{math.Inf(1), 4},
	}
	for _, tc := range cases {
		r := NewRegistry()
		h := r.Histogram("snmpfp_test_hist", bounds)
		h.Observe(tc.v)
		for i := range h.counts {
			want := uint64(0)
			if i == tc.want {
				want = 1
			}
			if got := h.counts[i].Load(); got != want {
				t.Errorf("Observe(%v): bucket[%d]=%d, want %d", tc.v, i, got, want)
			}
		}
	}
}

func TestHistogramCumulativeExport(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("snmpfp_test_hist", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	cum, total := h.snapshotBuckets()
	if want := []uint64{2, 3, 4}; !equalU64(cum, want) {
		t.Fatalf("cumulative buckets: %v want %v", cum, want)
	}
	if total != 6 || h.Count() != 6 {
		t.Fatalf("count: %d / %d", total, h.Count())
	}
	if got := h.Sum(); math.Abs(got-5556.2) > 1e-9 {
		t.Fatalf("sum: %v", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(100e-6, 2, 4)
	want := []float64{100e-6, 200e-6, 400e-6, 800e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d: %v want %v", i, b[i], want[i])
		}
	}
	if !sortedAscending(DefDurationBuckets) {
		t.Fatal("DefDurationBuckets must be ascending")
	}
}

// TestRegistryConcurrency races parallel increments against snapshot reads
// (run under -race by `make ci`): the final readings must be exact, and no
// intermediate snapshot may exceed them.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const writers, perWriter = 8, 5000
	c := r.Counter("snmpfp_test_events_total")
	h := r.Histogram("snmpfp_test_lat_seconds", []float64{0.001, 0.01, 0.1})
	g := r.Gauge("snmpfp_test_inflight")

	var readers, writersWG sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				for _, p := range snap {
					if p.Name == "snmpfp_test_events_total" && p.Value > writers*perWriter {
						t.Errorf("snapshot overshoot: %v", p.Value)
						return
					}
				}
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < writers; i++ {
		writersWG.Add(2)
		go func() {
			defer writersWG.Done()
			for j := 0; j < perWriter; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.005)
				g.Add(-1)
			}
		}()
		// Writers may also race series creation.
		go func(i int) {
			defer writersWG.Done()
			for j := 0; j < 100; j++ {
				r.Counter("snmpfp_test_churn_total", L("w", string(rune('a'+i)))).Inc()
			}
		}(i)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("final counter: %d want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("final histogram count: %d", got)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("final gauge: %v", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("snmpfp_b_total", L("shard", "0")).Add(3)
	r.Counter("snmpfp_b_total", L("shard", "1")).Add(4)
	r.Help("snmpfp_b_total", "probes sent")
	r.Gauge("snmpfp_a_depth").Set(1.5)
	h := r.Histogram("snmpfp_c_seconds", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(2)
	r.CounterFunc("snmpfp_d_total", func() uint64 { return 42 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE snmpfp_a_depth gauge",
		"snmpfp_a_depth 1.5",
		"# HELP snmpfp_b_total probes sent",
		"# TYPE snmpfp_b_total counter",
		`snmpfp_b_total{shard="0"} 3`,
		`snmpfp_b_total{shard="1"} 4`,
		"# TYPE snmpfp_c_seconds histogram",
		`snmpfp_c_seconds_bucket{le="0.5"} 1`,
		`snmpfp_c_seconds_bucket{le="1"} 1`,
		`snmpfp_c_seconds_bucket{le="+Inf"} 2`,
		"snmpfp_c_seconds_sum 2.25",
		"snmpfp_c_seconds_count 2",
		"# TYPE snmpfp_d_total counter",
		"snmpfp_d_total 42",
		"",
	}, "\n")
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("snmpfp_e_total", L("path", `a"b\c`+"\n")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `{path="a\"b\\c\n"}`) {
		t.Fatalf("unescaped labels:\n%s", sb.String())
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	r.CounterFunc("f", func() uint64 { return 1 })
	r.GaugeFunc("g", func() float64 { return 1 })
	r.Help("x", "help")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Value("x") != 0 {
		t.Fatal("nil registry Value must be 0")
	}
}

func TestTypeClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("snmpfp_clash")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type clash")
		}
	}()
	r.Gauge("snmpfp_clash")
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedAscending(b []float64) bool {
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			return false
		}
	}
	return true
}
