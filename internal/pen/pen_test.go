package pen

import "testing"

func TestPaperVendorsPresent(t *testing.T) {
	// Every vendor named in the paper's figures must resolve.
	want := map[uint32]string{
		9:     "Cisco",
		2011:  "Huawei",
		2636:  "Juniper",
		25506: "H3C",
		8072:  "Net-SNMP",
		1588:  "Brocade",
		4413:  "Broadcom",
		2863:  "Thomson",
		4526:  "Netgear",
		4684:  "Ambit",
		4881:  "Ruijie",
		13191: "OneAccess",
		664:   "Adtran",
	}
	for num, name := range want {
		got, ok := Lookup(num)
		if !ok || got != name {
			t.Errorf("Lookup(%d) = %q, %v; want %q", num, got, ok, name)
		}
	}
}

func TestNameFallback(t *testing.T) {
	if Name(9) != "Cisco" {
		t.Error("Name(9)")
	}
	if Name(999999999) != "unknown" {
		t.Error("Name of unregistered number should be unknown")
	}
}

func TestNumberOf(t *testing.T) {
	n, ok := NumberOf("Cisco")
	if !ok || n != 9 {
		t.Errorf("NumberOf(Cisco) = %d, %v", n, ok)
	}
	if _, ok := NumberOf("No Such Vendor"); ok {
		t.Error("unknown vendor resolved")
	}
}

func TestAllSortedAndConsistent(t *testing.T) {
	all := All()
	if len(all) != Size() {
		t.Fatalf("All() length %d != Size() %d", len(all), Size())
	}
	if len(all) < 50 {
		t.Errorf("registry subset suspiciously small: %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Number >= all[i].Number {
			t.Fatalf("All() not sorted at %d", i)
		}
	}
	for _, e := range all {
		if got := Name(e.Number); got != e.Name {
			t.Errorf("entry %d: %q != %q", e.Number, got, e.Name)
		}
	}
}
