// Package pen provides a curated subset of the IANA Private Enterprise
// Numbers registry (https://www.iana.org/assignments/enterprise-numbers).
//
// RFC 3411 engine IDs embed the agent vendor's enterprise number in their
// first four octets; the paper uses that number as a vendor fingerprint
// whenever the engine ID body itself is not a MAC address. The full registry
// has >60k entries; this subset covers every vendor the paper names, the
// most common network-equipment vendors observed in Internet-wide SNMP
// scans, and a spread of additional entries so lookups against unknown
// numbers are exercised.
package pen

import "sort"

// Entry is one enterprise-number registration.
type Entry struct {
	Number uint32
	Name   string
}

// registry maps enterprise number to organization name. Names follow the
// shortened vendor labels the paper uses in its figures.
var registry = map[uint32]string{
	2:     "IBM",
	9:     "Cisco",
	11:    "HP",
	42:    "Sun Microsystems",
	43:    "3Com",
	63:    "Apple",
	94:    "Nokia",
	111:   "Oracle",
	161:   "Motorola",
	171:   "D-Link",
	193:   "Ericsson",
	207:   "Allied Telesis",
	244:   "Lantronix",
	311:   "Microsoft",
	318:   "APC",
	529:   "Ascend",
	664:   "Adtran",
	674:   "Dell",
	890:   "ZyXEL",
	1588:  "Brocade", // Brocade Communication Systems, Inc.
	1916:  "Extreme Networks",
	1991:  "Foundry", // Foundry Networks (acquired by Brocade)
	2011:  "Huawei",
	2021:  "UCD-SNMP",
	2272:  "Nortel",
	2352:  "Redback",
	2636:  "Juniper",
	2863:  "Thomson",
	3224:  "NetScreen",
	3375:  "F5",
	3902:  "ZTE",
	4413:  "Broadcom",
	4526:  "Netgear",
	4684:  "Ambit",
	4881:  "Ruijie",
	5567:  "RAD",
	5624:  "Enterasys",
	6027:  "Force10",
	6141:  "Ciena",
	6486:  "Alcatel-Lucent",
	6527:  "Nokia SROS", // Timetra/Alcatel-Lucent SR OS, now Nokia
	6876:  "VMware",
	8072:  "Net-SNMP",
	9303:  "TELDAT",
	10002: "Frogfoot",
	10418: "Avocent",
	11863: "TP-Link",
	12356: "Fortinet",
	13191: "OneAccess",
	14823: "Aruba",
	14988: "MikroTik",
	16394: "DASAN",
	17409: "GCOM",
	18070: "Draytek",
	19376: "Positron",
	21839: "Calix",
	25461: "Palo Alto Networks",
	25506: "H3C",
	26928: "Meraki",
	30065: "Arista",
	35265: "Eltex",
	37072: "AudioCodes",
	41112: "Ubiquiti",
	47196: "FiberHome",
	52642: "BDCOM",
}

// Lookup returns the organization registered for the enterprise number.
func Lookup(number uint32) (name string, ok bool) {
	name, ok = registry[number]
	return name, ok
}

// Name returns the registered organization or "unknown" when the number is
// not in the subset.
func Name(number uint32) string {
	if n, ok := registry[number]; ok {
		return n
	}
	return "unknown"
}

// NumberOf performs the reverse lookup used by the simulator and the
// promiscuous-engine-ID filter: vendor name to enterprise number.
func NumberOf(name string) (uint32, bool) {
	for num, n := range registry {
		if n == name {
			return num, true
		}
	}
	return 0, false
}

// All returns every entry sorted by number. The result is a fresh slice.
func All() []Entry {
	out := make([]Entry, 0, len(registry))
	for num, name := range registry {
		out = append(out, Entry{Number: num, Name: name})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// Size reports how many registrations the subset carries.
func Size() int { return len(registry) }
