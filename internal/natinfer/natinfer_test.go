package natinfer

import (
	"net/netip"
	"testing"
	"time"

	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/scanner"
)

func world(t *testing.T) *netsim.World {
	t.Helper()
	w := netsim.Generate(netsim.TinyConfig(13))
	w.Clock.Set(w.Cfg.StartTime.Add(20 * 24 * time.Hour))
	return w
}

func TestClassifyLoadBalancer(t *testing.T) {
	w := world(t)
	found := 0
	for _, d := range w.Devices {
		if len(d.Pool) == 0 || len(d.V4) == 0 {
			continue
		}
		tr := w.NewTransport()
		res := Classify(tr, d.V4[0], 8, 50*time.Millisecond)
		tr.Close()
		if res.Verdict != LoadBalanced {
			// Per-scan loss can silence a VIP entirely; skip those.
			if res.Verdict == Unresponsive {
				continue
			}
			t.Fatalf("VIP %v classified %v (IDs %d)", d.V4[0], res.Verdict, res.DistinctIDs())
		}
		if res.DistinctIDs() < 2 || res.DistinctIDs() > len(d.Pool) {
			t.Errorf("VIP %v: %d identities, pool %d", d.V4[0], res.DistinctIDs(), len(d.Pool))
		}
		found++
	}
	if found == 0 {
		t.Fatal("no VIPs classified")
	}
}

func TestClassifyStableDevice(t *testing.T) {
	w := world(t)
	for _, d := range w.Devices {
		if d.Quirk != netsim.QuirkNone || !d.Responds || len(d.V4) == 0 || !w.RespondsAt(d.V4[0]) {
			continue
		}
		tr := w.NewTransport()
		res := Classify(tr, d.V4[0], 6, 50*time.Millisecond)
		tr.Close()
		if res.Verdict == Unresponsive {
			continue // loss coin
		}
		if res.Verdict != Stable {
			t.Fatalf("clean device %v classified %v", d.V4[0], res.Verdict)
		}
		return
	}
	t.Fatal("no clean device found")
}

func TestClassifyUnresponsive(t *testing.T) {
	w := world(t)
	tr := w.NewTransport()
	defer tr.Close()
	res := Classify(tr, netip.MustParseAddr("203.0.113.200"), 3, 20*time.Millisecond)
	if res.Verdict != Unresponsive || res.Responses != 0 {
		t.Errorf("silent address: %v (%d responses)", res.Verdict, res.Responses)
	}
}

func TestRunAggregation(t *testing.T) {
	w := world(t)
	var candidates []netip.Addr
	for _, d := range w.Devices {
		if len(d.Pool) > 0 && len(d.V4) > 0 {
			candidates = append(candidates, d.V4[0])
		}
		if len(candidates) == 4 {
			break
		}
	}
	candidates = append(candidates, netip.MustParseAddr("203.0.113.201"))
	s := Run(func() scanner.Transport { return w.NewTransport() }, candidates, 6, 20*time.Millisecond)
	if s.Candidates != len(candidates) {
		t.Errorf("candidates = %d", s.Candidates)
	}
	if s.LoadBalanced+s.Stable+s.Unresponsive != s.Candidates {
		t.Error("verdicts do not add up")
	}
	if s.Unresponsive == 0 {
		t.Error("silent candidate not counted")
	}
	if len(s.Results) != s.Candidates {
		t.Error("per-candidate results missing")
	}
	if len(s.PoolSizes) != s.LoadBalanced {
		t.Error("pool sizes out of sync")
	}
}

func TestVerdictStrings(t *testing.T) {
	if Unresponsive.String() == "" || Stable.String() == "" || LoadBalanced.String() == "" {
		t.Error("empty verdict names")
	}
}
