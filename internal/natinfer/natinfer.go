// Package natinfer implements the follow-up inference the paper's
// conclusion proposes: using the SNMPv3 identifiers to detect NAT and load
// balancers in the wild (Section 9).
//
// A campaign sees one engine identity per IP per scan. An IP whose identity
// *changed between campaigns* is ambiguous: the address may have churned to
// a different subscriber, or it may be a load-balanced VIP whose probes
// reach different backends. The two are separable with a short burst of
// additional probes carrying distinct message IDs: a churned address
// answers with one stable (new) identity, while a VIP cycles through a
// small stable pool.
package natinfer

import (
	"net/netip"
	"sort"
	"time"

	"snmpv3fp/internal/core"
	"snmpv3fp/internal/scanner"
)

// Verdict classifies a re-probed candidate.
type Verdict int

// Verdicts.
const (
	// Unresponsive: the burst got no answers.
	Unresponsive Verdict = iota
	// Stable: one identity answered every probe — the inter-campaign
	// change was address churn (or a one-off replacement).
	Stable
	// LoadBalanced: multiple identities alternate within the burst.
	LoadBalanced
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Stable:
		return "stable (churned address)"
	case LoadBalanced:
		return "load-balanced"
	default:
		return "unresponsive"
	}
}

// Result is the outcome for one candidate IP.
type Result struct {
	IP        netip.Addr
	Responses int
	// IDs are the distinct engine IDs observed, hex-keyed.
	IDs     map[string]int
	Verdict Verdict
}

// DistinctIDs counts the identities observed.
func (r *Result) DistinctIDs() int { return len(r.IDs) }

// Classify probes addr `burst` times with distinct message IDs and
// classifies the identity behaviour. The transport should be dedicated to
// this candidate: late responses from earlier timed-out probes to other
// addresses would otherwise interleave.
func Classify(tr scanner.Transport, addr netip.Addr, burst int, timeout time.Duration) *Result {
	r := &Result{IP: addr, IDs: map[string]int{}}
	for i := 0; i < burst; i++ {
		obs, err := core.ProbeWithID(tr, addr, int64(1000+i), timeout)
		if err != nil || obs == nil {
			continue
		}
		r.Responses++
		r.IDs[string(obs.EngineID)]++
	}
	switch {
	case r.Responses == 0:
		r.Verdict = Unresponsive
	case len(r.IDs) >= 2:
		r.Verdict = LoadBalanced
	default:
		r.Verdict = Stable
	}
	return r
}

// Survey classifies every candidate and aggregates counts.
type Survey struct {
	Candidates   int
	Unresponsive int
	Stable       int
	LoadBalanced int
	// PoolSizes holds the distinct-identity count of each VIP found.
	PoolSizes []int
	// Results holds the per-candidate outcomes, in candidate order.
	Results []*Result
}

// Run sweeps the candidate list, opening a fresh transport per candidate.
// Candidates are typically the IPs whose engine ID disagreed between the
// two campaigns.
func Run(newTransport func() scanner.Transport, candidates []netip.Addr, burst int, timeout time.Duration) *Survey {
	s := &Survey{Candidates: len(candidates)}
	for _, addr := range candidates {
		tr := newTransport()
		res := Classify(tr, addr, burst, timeout)
		tr.Close()
		s.Results = append(s.Results, res)
		switch res.Verdict {
		case Unresponsive:
			s.Unresponsive++
		case Stable:
			s.Stable++
		case LoadBalanced:
			s.LoadBalanced++
			s.PoolSizes = append(s.PoolSizes, res.DistinctIDs())
		}
	}
	sort.Ints(s.PoolSizes)
	return s
}
