// Package engineid constructs and classifies RFC 3411 snmpEngineID values.
//
// The engine ID is the paper's central identifier: persistent across
// re-initializations (re-keying makes changing it cumbersome), disclosed to
// unauthenticated discovery probes, and in the common case derived from one
// of the device's IEEE MAC addresses. An engine ID is laid out as
//
//	bytes 0..3  enterprise number; bit 7 of byte 0 is the RFC 3411
//	            conformance bit (1 = new format, 0 = legacy 12-octet format)
//	byte  4     format: 1 IPv4, 2 IPv6, 3 MAC, 4 text, 5 octets,
//	            6..127 reserved, 128..255 enterprise-specific
//	bytes 5..   format-dependent body
//
// Real-world agents also emit values that follow no RFC layout at all; the
// paper calls these "non-SNMPv3-conforming" and this package classifies them
// as FormatNonConforming.
package engineid

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"snmpv3fp/internal/oui"
	"snmpv3fp/internal/pen"
)

// Format is the engine ID body format, extended with the observational
// categories of the paper's Figure 5.
type Format int

// Engine ID formats.
const (
	// FormatNonConforming covers values without the RFC 3411 structure
	// (conformance bit clear and not the legacy 12-octet layout, or too
	// short to carry a header).
	FormatNonConforming Format = iota
	// FormatLegacy is the original RFC 1910 12-octet layout (conformance
	// bit clear, exactly 12 octets, first four octets an enterprise number).
	FormatLegacy
	FormatIPv4
	FormatIPv6
	FormatMAC
	FormatText
	FormatOctets
	// FormatReserved is a conformant header with format byte 0 or 6..127.
	FormatReserved
	// FormatNetSNMP is the Net-SNMP enterprise-specific layout
	// (enterprise 8072, format byte 128): the most common software agent.
	FormatNetSNMP
	// FormatEnterprise is any other enterprise-specific layout (format byte
	// 128..255).
	FormatEnterprise
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatNonConforming:
		return "non-conforming"
	case FormatLegacy:
		return "legacy"
	case FormatIPv4:
		return "ipv4"
	case FormatIPv6:
		return "ipv6"
	case FormatMAC:
		return "mac"
	case FormatText:
		return "text"
	case FormatOctets:
		return "octets"
	case FormatReserved:
		return "reserved"
	case FormatNetSNMP:
		return "net-snmp"
	case FormatEnterprise:
		return "enterprise-specific"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// PaperCategory maps the format onto the category labels of the paper's
// Figure 5.
func (f Format) PaperCategory() string {
	switch f {
	case FormatMAC:
		return "MAC"
	case FormatOctets:
		return "Octets"
	case FormatNetSNMP:
		return "Net-SNMP"
	case FormatIPv4:
		return "IPv4"
	case FormatIPv6:
		return "IPv6"
	case FormatText:
		return "Text"
	case FormatEnterprise, FormatReserved, FormatLegacy:
		return "Other"
	default:
		return "Non-conforming"
	}
}

// netSNMPEnterprise is Net-SNMP's IANA enterprise number.
const netSNMPEnterprise = 8072

// Parsed is a classified engine ID.
type Parsed struct {
	// Raw is the engine ID exactly as received.
	Raw []byte
	// Conformant reports whether the RFC 3411 conformance bit is set.
	Conformant bool
	// Enterprise is the embedded IANA enterprise number; zero when the
	// value is non-conforming.
	Enterprise uint32
	// Format is the classified body format.
	Format Format
	// Data is the format-dependent body (e.g. the 6 MAC octets). It aliases
	// Raw.
	Data []byte
}

// Classify parses raw into its RFC 3411 components. It never fails: values
// that fit no layout come back as FormatNonConforming with Data == Raw.
func Classify(raw []byte) Parsed {
	p := Parsed{Raw: raw, Data: raw}
	if len(raw) < 5 {
		return p
	}
	if raw[0]&0x80 == 0 {
		// Conformance bit clear: the only structured possibility is the
		// legacy 12-octet layout with a known enterprise number.
		if len(raw) == 12 {
			ent := binary.BigEndian.Uint32(raw[:4])
			if _, ok := pen.Lookup(ent); ok {
				p.Format = FormatLegacy
				p.Enterprise = ent
				p.Data = raw[4:]
				return p
			}
		}
		return p
	}
	p.Conformant = true
	p.Enterprise = binary.BigEndian.Uint32(raw[:4]) &^ 0x80000000
	format := raw[4]
	body := raw[5:]
	p.Data = body
	switch {
	case format == 1 && len(body) == 4:
		p.Format = FormatIPv4
	case format == 2 && len(body) == 16:
		p.Format = FormatIPv6
	case format == 3 && len(body) >= 6 && len(body) <= 8:
		// RFC 3411 mandates exactly 6 octets, but agents in the wild pad
		// with trailing bytes (the Cisco CSCts87275 bug ID carries 7); the
		// paper still classifies these as MAC-based, as do dissectors.
		p.Format = FormatMAC
		p.Data = body[:6]
	case format == 4 && len(body) >= 1 && len(body) <= 27:
		p.Format = FormatText
	case format == 5:
		p.Format = FormatOctets
	case format >= 128:
		if p.Enterprise == netSNMPEnterprise {
			p.Format = FormatNetSNMP
		} else {
			p.Format = FormatEnterprise
		}
	case format == 1 || format == 2 || format == 3 || format == 4:
		// Right format byte, wrong body length: treat as opaque octets, as
		// the measurement must (the value is still usable as an identifier).
		p.Format = FormatOctets
	default:
		p.Format = FormatReserved
	}
	return p
}

// MAC returns the MAC address for MAC-format engine IDs.
func (p Parsed) MAC() ([]byte, bool) {
	if p.Format != FormatMAC {
		return nil, false
	}
	return p.Data, true
}

// IPv4 returns the embedded IPv4 address for IPv4-format engine IDs.
func (p Parsed) IPv4() ([4]byte, bool) {
	if p.Format != FormatIPv4 || len(p.Data) != 4 {
		return [4]byte{}, false
	}
	return [4]byte{p.Data[0], p.Data[1], p.Data[2], p.Data[3]}, true
}

// Vendor infers the device vendor. MAC-format engine IDs use the IEEE OUI
// (the paper's highest-confidence signal); everything else falls back to the
// embedded enterprise number. The returned source is "oui", "enterprise" or
// "" when no inference is possible.
func (p Parsed) Vendor() (vendor, source string) {
	if mac, ok := p.MAC(); ok {
		if v, ok := oui.LookupMAC(mac); ok {
			return v, "oui"
		}
	}
	if p.Enterprise != 0 {
		if v, ok := pen.Lookup(p.Enterprise); ok {
			return v, "enterprise"
		}
	}
	return "", ""
}

// EnterpriseName resolves the embedded enterprise number against the IANA
// registry subset.
func (p Parsed) EnterpriseName() string {
	if p.Enterprise == 0 {
		return "unknown"
	}
	return pen.Name(p.Enterprise)
}

// String renders the engine ID as lowercase hex, the notation used
// throughout the paper.
func (p Parsed) String() string { return fmt.Sprintf("0x%x", p.Raw) }

// header returns the four enterprise octets with the conformance bit set.
func header(enterprise uint32) []byte {
	var h [4]byte
	binary.BigEndian.PutUint32(h[:], enterprise|0x80000000)
	return h[:]
}

// NewMAC builds a conformant MAC-format engine ID.
func NewMAC(enterprise uint32, mac [6]byte) []byte {
	id := append(header(enterprise), 3)
	return append(id, mac[:]...)
}

// NewIPv4 builds a conformant IPv4-format engine ID.
func NewIPv4(enterprise uint32, addr [4]byte) []byte {
	id := append(header(enterprise), 1)
	return append(id, addr[:]...)
}

// NewIPv6 builds a conformant IPv6-format engine ID.
func NewIPv6(enterprise uint32, addr [16]byte) []byte {
	id := append(header(enterprise), 2)
	return append(id, addr[:]...)
}

// NewText builds a conformant text-format engine ID. Text longer than the
// RFC's 27-octet limit is truncated.
func NewText(enterprise uint32, text string) []byte {
	if len(text) > 27 {
		text = text[:27]
	}
	id := append(header(enterprise), 4)
	return append(id, text...)
}

// NewOctets builds a conformant octets-format engine ID.
func NewOctets(enterprise uint32, octets []byte) []byte {
	id := append(header(enterprise), 5)
	return append(id, octets...)
}

// NewNetSNMP builds a Net-SNMP style engine ID: enterprise 8072, the
// enterprise-specific format byte Net-SNMP uses for its random layout, and
// an 8-octet body (random bytes + creation time in Net-SNMP itself).
func NewNetSNMP(body [8]byte) []byte {
	id := append(header(netSNMPEnterprise), 0x80)
	return append(id, body[:]...)
}

// NewNonConforming returns raw as-is; it exists to make call sites in the
// simulator explicit about producing broken values.
func NewNonConforming(raw []byte) []byte { return raw }

// HammingWeight counts the 1-bits of the value.
func HammingWeight(b []byte) int {
	n := 0
	for _, x := range b {
		n += bits.OnesCount8(x)
	}
	return n
}

// RelativeHammingWeight is the fraction of bits set to one, the randomness
// indicator of the paper's Figure 6. It returns 0 for empty input.
func RelativeHammingWeight(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	return float64(HammingWeight(b)) / float64(len(b)*8)
}
