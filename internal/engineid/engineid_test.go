package engineid

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestClassifyPaperExamples(t *testing.T) {
	// Figure 3: Brocade engine ID 800007c703748ef831db80 —
	// enterprise 1991 (Foundry/Brocade block 0x7c7), MAC format,
	// MAC 74:8e:f8:31:db:80 whose OUI is registered to Brocade.
	raw := []byte{0x80, 0x00, 0x07, 0xc7, 0x03, 0x74, 0x8e, 0xf8, 0x31, 0xdb, 0x80}
	p := Classify(raw)
	if !p.Conformant {
		t.Error("should be conformant")
	}
	if p.Enterprise != 1991 {
		t.Errorf("enterprise = %d", p.Enterprise)
	}
	if p.Format != FormatMAC {
		t.Errorf("format = %v", p.Format)
	}
	mac, ok := p.MAC()
	if !ok || !bytes.Equal(mac, []byte{0x74, 0x8e, 0xf8, 0x31, 0xdb, 0x80}) {
		t.Errorf("MAC = %x", mac)
	}
	vendor, source := p.Vendor()
	if vendor != "Brocade" || source != "oui" {
		t.Errorf("vendor = %q via %q", vendor, source)
	}
	if p.String() != "0x800007c703748ef831db80" {
		t.Errorf("String = %s", p.String())
	}
}

func TestClassifyCiscoBugEngineID(t *testing.T) {
	// Section 4.3: the CSCts87275 bug yields the constant engine ID
	// 0x800000090300000000000000 — Cisco enterprise, MAC format, zero MAC.
	raw := []byte{0x80, 0x00, 0x00, 0x09, 0x03, 0, 0, 0, 0, 0, 0, 0}
	p := Classify(raw)
	if p.Enterprise != 9 || p.Format != FormatMAC {
		t.Errorf("enterprise %d format %v", p.Enterprise, p.Format)
	}
	// The zero OUI is unregistered: vendor falls back to the enterprise.
	vendor, source := p.Vendor()
	if vendor != "Cisco" || source != "enterprise" {
		t.Errorf("vendor = %q via %q", vendor, source)
	}
}

func TestClassifyNonConforming(t *testing.T) {
	// Section 4.2 example: 0x0300e0acf1325a88 carries no format info.
	raw := []byte{0x03, 0x00, 0xe0, 0xac, 0xf1, 0x32, 0x5a, 0x88}
	p := Classify(raw)
	if p.Conformant || p.Format != FormatNonConforming {
		t.Errorf("conformant=%v format=%v", p.Conformant, p.Format)
	}
	if p.Format.PaperCategory() != "Non-conforming" {
		t.Errorf("category = %s", p.Format.PaperCategory())
	}
	if v, _ := p.Vendor(); v != "" {
		t.Errorf("vendor should be unknown, got %q", v)
	}
}

func TestClassifyNetSNMP(t *testing.T) {
	id := NewNetSNMP([8]byte{0x0f, 0x01, 0x0e, 0x37, 0x32, 0xbe, 0xd2, 0x5e})
	p := Classify(id)
	if p.Format != FormatNetSNMP {
		t.Errorf("format = %v", p.Format)
	}
	if p.Enterprise != 8072 {
		t.Errorf("enterprise = %d", p.Enterprise)
	}
	if v, src := p.Vendor(); v != "Net-SNMP" || src != "enterprise" {
		t.Errorf("vendor = %q via %q", v, src)
	}
	if p.Format.PaperCategory() != "Net-SNMP" {
		t.Errorf("category = %s", p.Format.PaperCategory())
	}
}

func TestConstructorsRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		raw    []byte
		format Format
		ent    uint32
	}{
		{"mac", NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 1, 2, 3}), FormatMAC, 9},
		{"ipv4", NewIPv4(2011, [4]byte{192, 0, 2, 1}), FormatIPv4, 2011},
		{"ipv6", NewIPv6(2636, [16]byte{0x20, 0x01, 0x0d, 0xb8}), FormatIPv6, 2636},
		{"text", NewText(9, "router1.example"), FormatText, 9},
		{"octets", NewOctets(25506, []byte{0x39, 0x10, 0x91, 0x06, 0x80, 0x00, 0x29, 0x70}), FormatOctets, 25506},
		{"netsnmp", NewNetSNMP([8]byte{1, 2, 3, 4, 5, 6, 7, 8}), FormatNetSNMP, 8072},
	}
	for _, c := range cases {
		p := Classify(c.raw)
		if p.Format != c.format {
			t.Errorf("%s: format %v, want %v", c.name, p.Format, c.format)
		}
		if p.Enterprise != c.ent {
			t.Errorf("%s: enterprise %d, want %d", c.name, p.Enterprise, c.ent)
		}
		if !p.Conformant {
			t.Errorf("%s: should be conformant", c.name)
		}
	}
}

func TestTextTruncation(t *testing.T) {
	long := "this-text-is-well-beyond-the-twenty-seven-octet-limit"
	id := NewText(9, long)
	p := Classify(id)
	if p.Format != FormatText {
		t.Errorf("format = %v", p.Format)
	}
	if len(p.Data) != 27 {
		t.Errorf("text length %d", len(p.Data))
	}
}

func TestClassifyShortAndEmpty(t *testing.T) {
	for _, raw := range [][]byte{nil, {}, {0x80}, {0x80, 0x00, 0x00, 0x09}} {
		p := Classify(raw)
		if p.Format != FormatNonConforming {
			t.Errorf("short %x: format %v", raw, p.Format)
		}
	}
}

func TestClassifyLegacy(t *testing.T) {
	// Legacy 12-octet: enterprise 9 with conformance bit clear.
	raw := []byte{0x00, 0x00, 0x00, 0x09, 1, 2, 3, 4, 5, 6, 7, 8}
	p := Classify(raw)
	if p.Format != FormatLegacy || p.Enterprise != 9 {
		t.Errorf("format %v enterprise %d", p.Format, p.Enterprise)
	}
	// Same layout with an unknown enterprise stays non-conforming.
	raw2 := []byte{0x00, 0x0F, 0xFF, 0xFF, 1, 2, 3, 4, 5, 6, 7, 8}
	if p2 := Classify(raw2); p2.Format != FormatNonConforming {
		t.Errorf("unknown legacy enterprise: %v", p2.Format)
	}
}

func TestClassifyWrongBodyLengths(t *testing.T) {
	// MAC format byte with a 5-octet body is classified as octets (usable
	// identifier, unusable MAC).
	raw := []byte{0x80, 0x00, 0x00, 0x09, 0x03, 1, 2, 3, 4, 5}
	p := Classify(raw)
	if p.Format != FormatOctets {
		t.Errorf("format = %v", p.Format)
	}
	if _, ok := p.MAC(); ok {
		t.Error("MAC() should fail on 5-octet body")
	}
}

func TestClassifyReserved(t *testing.T) {
	raw := []byte{0x80, 0x00, 0x00, 0x09, 0x10, 1, 2, 3}
	if p := Classify(raw); p.Format != FormatReserved {
		t.Errorf("format = %v", p.Format)
	}
}

func TestClassifyEnterpriseSpecific(t *testing.T) {
	raw := []byte{0x80, 0x00, 0x00, 0x09, 0x81, 1, 2, 3}
	p := Classify(raw)
	if p.Format != FormatEnterprise {
		t.Errorf("format = %v", p.Format)
	}
	if p.Format.PaperCategory() != "Other" {
		t.Errorf("category = %s", p.Format.PaperCategory())
	}
}

func TestIPv4Accessor(t *testing.T) {
	id := NewIPv4(9, [4]byte{198, 51, 100, 7})
	p := Classify(id)
	addr, ok := p.IPv4()
	if !ok || addr != [4]byte{198, 51, 100, 7} {
		t.Errorf("IPv4 = %v ok=%v", addr, ok)
	}
	if _, ok := Classify(NewMAC(9, [6]byte{})).IPv4(); ok {
		t.Error("IPv4() on MAC format should fail")
	}
}

func TestHammingWeight(t *testing.T) {
	cases := []struct {
		in   []byte
		want int
	}{
		{nil, 0},
		{[]byte{0x00}, 0},
		{[]byte{0xFF}, 8},
		{[]byte{0x0F, 0xF0}, 8},
		{[]byte{0x01, 0x02, 0x04}, 3},
	}
	for _, c := range cases {
		if got := HammingWeight(c.in); got != c.want {
			t.Errorf("HammingWeight(%x) = %d, want %d", c.in, got, c.want)
		}
	}
	if RelativeHammingWeight(nil) != 0 {
		t.Error("empty relative weight should be 0")
	}
	if got := RelativeHammingWeight([]byte{0x0F}); got != 0.5 {
		t.Errorf("relative = %v", got)
	}
	if got := RelativeHammingWeight([]byte{0xFF, 0xFF}); got != 1.0 {
		t.Errorf("relative = %v", got)
	}
}

func TestClassifyQuickNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		p := Classify(raw)
		_ = p.Format.String()
		_ = p.Format.PaperCategory()
		_, _ = p.Vendor()
		_ = p.EnterpriseName()
		return bytes.Equal(p.Raw, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFormatStrings(t *testing.T) {
	for f := FormatNonConforming; f <= FormatEnterprise; f++ {
		if f.String() == "" {
			t.Errorf("format %d has empty name", int(f))
		}
	}
	if Format(99).String() != "format(99)" {
		t.Error("unknown format name")
	}
}
