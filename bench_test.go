// Benchmark harness: one benchmark per table and figure of the paper,
// regenerating the artifact from the shared full-scale simulated campaigns,
// plus ablation benchmarks for the design choices called out in DESIGN.md.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Each benchmark measures the analysis cost over the default-scale world
// (campaigns are run once and shared, exactly as the paper cuts all
// analyses from a single measurement). Custom metrics attach the headline
// numbers of each artifact so `go test -bench` output doubles as a results
// table.
package snmpv3fp_test

import (
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/analysis"
	"snmpv3fp/internal/experiments"
	"snmpv3fp/internal/filter"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/scanner"
	"snmpv3fp/internal/snmp"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

// sharedEnv builds the full-scale environment once per process. The build
// cost (world generation + four campaigns) is excluded from whichever
// benchmark happens to trigger it.
func sharedEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.Shared(1)
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	b.ResetTimer()
	return benchEnv
}

func BenchmarkTable1_ScanCampaigns(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table1(e)
	}
	b.ReportMetric(float64(r.IPs[0]), "v4scan1_ips")
	b.ReportMetric(float64(r.ValidEngineIDTime[0]), "v4_valid_ips")
	b.ReportMetric(float64(r.ValidEngineIDTime[1]), "v6_valid_ips")
}

func BenchmarkTable2_RouterDatasets(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table2(e)
	}
	b.ReportMetric(float64(r.Union4), "router_ipv4_addrs")
	b.ReportMetric(float64(r.Union4Resp), "responsive")
}

func BenchmarkTable3_AliasVariants(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table3(e)
	}
	last := r.Rows[len(r.Rows)-1]
	b.ReportMetric(float64(last.Stats.Sets), "div20both_sets")
	b.ReportMetric(last.Stats.IPsPerNonSingleton(), "ips_per_nonsingleton")
}

func BenchmarkFigure2_3_Dissection(b *testing.B) {
	e := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figures23(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4_IPsPerEngineID(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure4(e)
	}
	b.ReportMetric(r.SingleIPShareV4*100, "v4_single_ip_pct")
	b.ReportMetric(r.V4.Max(), "max_ips_per_id")
}

func BenchmarkFigure5_EngineIDFormats(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure5(e)
	}
	b.ReportMetric(r.V4["MAC"]*100, "v4_mac_pct")
}

func BenchmarkFigure6_HammingWeight(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure6(e)
	}
	b.ReportMetric(r.OctetsMean, "octets_mean_hw")
	b.ReportMetric(r.NonConformingSkew, "noncon_skew")
}

func BenchmarkFigure7_TopEngineIDReboots(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure7(e)
	}
	b.ReportMetric(float64(r.V4[0].IPs), "top_v4_id_ips")
	b.ReportMetric(r.V4[0].SpreadDays, "top_v4_spread_days")
}

func BenchmarkFigure8_RebootDelta(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure8Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure8(e)
	}
	b.ReportMetric(r.WithinThresholdRouter4*100, "router_within_10s_pct")
}

func BenchmarkFigure9_AliasSetSizes(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure9(e)
	}
	b.ReportMetric(r.V4Stats.IPsPerNonSingleton(), "v4_ips_per_ns_set")
	b.ReportMetric(r.Precision, "precision")
	b.ReportMetric(r.Recall, "recall")
}

func BenchmarkFigure10_ASCoverage(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure10Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure10(e)
	}
	b.ReportMetric(r.OverallCoverage*100, "overall_coverage_pct")
}

func BenchmarkFigure11_VendorPopularity(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure11Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure11(e)
	}
	b.ReportMetric(float64(r.TotalDevices), "devices")
	b.ReportMetric(r.Top10Share*100, "top10_pct")
}

func BenchmarkFigure12_RouterVendors(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure12Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure12(e)
	}
	b.ReportMetric(float64(r.TotalRouters), "routers")
	b.ReportMetric(r.Top4Share*100, "top4_pct")
}

func BenchmarkFigure13_RouterUptime(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure13Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure13(e)
	}
	b.ReportMetric(r.WithinYearOfScan*100, "rebooted_within_year_pct")
}

func BenchmarkFigure14_VendorsPerAS(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure14Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure14(e)
	}
	b.ReportMetric(r.SingleVendorShare5*100, "single_vendor_pct")
}

func BenchmarkFigure15_RegionVendors(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure15Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure15(e)
	}
	for _, row := range r.Rows {
		if row.Region == netsim.RegionNA {
			b.ReportMetric(row.Share["Huawei"], "na_huawei_pct")
		}
		if row.Region == netsim.RegionAS {
			b.ReportMetric(row.Share["Huawei"], "as_huawei_pct")
		}
	}
}

func BenchmarkFigure16_Top10Networks(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure16Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure16(e)
	}
	b.ReportMetric(float64(r.Rows[0].Routers), "largest_as_routers")
}

func BenchmarkFigure17_VendorDominance(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure17Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure17(e)
	}
	b.ReportMetric(r.HighDominanceShare*100, "dominance_ge_07_pct")
}

func BenchmarkFigure18_RegionalDominance(b *testing.B) {
	e := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		experiments.Figure18(e)
	}
}

func BenchmarkFigure19_TupleUniqueness(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure19Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure19(e)
	}
	b.ReportMetric(r.UniqueShareV4*100, "v4_unique_tuple_pct")
	b.ReportMetric(r.UniqueShareV6*100, "v6_unique_tuple_pct")
}

func BenchmarkFigure20_RoutersPerAS(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Figure20Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure20(e)
	}
	b.ReportMetric(r.All.Max(), "largest_as_routers")
}

func BenchmarkSection52_RouterNames(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Section52Result
	for i := 0; i < b.N; i++ {
		r = experiments.Section52(e)
	}
	b.ReportMetric(float64(r.NameSets), "name_sets")
	b.ReportMetric(float64(r.SNMPNonSingleton), "snmp_sets")
}

func BenchmarkSection53_MIDARSpeedtrap(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Section53Result
	for i := 0; i < b.N; i++ {
		r = experiments.Section53(e)
	}
	b.ReportMetric(float64(r.MIDARStats.NonSingleton), "midar_ns_sets")
	b.ReportMetric(float64(r.SNMP4NonSingleton), "snmp_v4_ns_sets")
}

func BenchmarkSection54_CombinedCoverage(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Section54Result
	for i := 0; i < b.N; i++ {
		r = experiments.Section54(e)
	}
	b.ReportMetric(r.MIDAROnly*100, "midar_pct")
	b.ReportMetric(r.SNMPOnly*100, "snmp_pct")
	b.ReportMetric(r.Union*100, "combined_pct")
}

func BenchmarkSection622_OperatorSurvey(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Section622Result
	for i := 0; i < b.N; i++ {
		r = experiments.Section622(e)
	}
	b.ReportMetric(float64(r.SetsShared), "sets_shared")
	b.ReportMetric(100*float64(r.SetsConfirmed)/float64(maxI(r.SetsShared, 1)), "confirmed_pct")
	b.ReportMetric(r.MissedInterfaceShare*100, "acl_missed_pct")
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkSection621_LabTest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Section621(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSection623_Nmap(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Section623Result
	for i := 0; i < b.N; i++ {
		r = experiments.Section623(e)
	}
	b.ReportMetric(100*float64(r.NoResult)/float64(r.Sampled), "no_result_pct")
	b.ReportMetric(100*float64(r.Match)/float64(r.Sampled), "match_pct")
}

func BenchmarkSection73_Siblings(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Section73Result
	for i := 0; i < b.N; i++ {
		r = experiments.Section73(e)
	}
	b.ReportMetric(float64(r.DualStackSNMP), "snmp_dualstack_sets")
	b.ReportMetric(float64(r.Skew.Siblings), "skew_confirmed")
	b.ReportMetric(float64(r.Skew.NoData), "skew_unmeasurable")
}

func BenchmarkSection8_Vulnerabilities(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Section8Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Section8(e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.MultiResponders), "multi_responders")
	b.ReportMetric(float64(r.MaxResponses), "max_responses")
	b.ReportMetric(r.BAF, "baf")
}

func BenchmarkSection9_NATInference(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.Section9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Section9(e)
	}
	b.ReportMetric(float64(r.Survey.Candidates), "candidates")
	b.ReportMetric(float64(r.TruePositives), "lbs_found")
	b.ReportMetric(float64(r.FalsePositives), "false_positives")
}

func BenchmarkMonitorExtension(b *testing.B) {
	e := sharedEnv(b)
	var r *experiments.MonitorResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Monitor(e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Summary.Tracked), "tracked_ips")
	b.ReportMetric(float64(r.Summary.RebootEvents), "restart_events")
	b.ReportMetric(r.RebootRatePerWeek, "restarts_per_ip_week")
}

// --- Ablation benchmarks (design choices from DESIGN.md §5) ---

// BenchmarkAblationSingleScan quantifies what the second campaign buys.
// Within one snapshot, single-scan alias sets are still internally
// consistent — the cost of skipping the second scan is *staleness*: IPs
// accepted as valid whose identity has already churned, drifted or rebooted
// by the time anyone uses the data. We measure the share of single-scan
// "valid" IPs whose second-campaign observation contradicts the first.
func BenchmarkAblationSingleScan(b *testing.B) {
	e := sharedEnv(b)
	var staleShare float64
	var singleValid, bothValid int
	for i := 0; i < b.N; i++ {
		// Single-scan pipeline: merge scan 1 with itself so every
		// cross-scan consistency check trivially passes.
		single := filter.Run(e.V4Scan1, e.V4Scan1)
		singleValid = len(single.Valid)
		bothValid = len(e.V4Filter.Valid)
		stale := 0
		for _, m := range single.Valid {
			o2, ok := e.V4Scan2.ByIP[m.IP]
			if !ok {
				stale++
				continue
			}
			if string(o2.EngineID) != string(m.EngineID) || o2.EngineBoots != m.Boots[0] {
				stale++
				continue
			}
			d := m.LastReboot[0].Sub(o2.LastReboot())
			if d < 0 {
				d = -d
			}
			if d > filter.RebootThreshold {
				stale++
			}
		}
		staleShare = float64(stale) / float64(singleValid)
	}
	b.ReportMetric(float64(singleValid), "single_scan_valid_ips")
	b.ReportMetric(float64(bothValid), "two_scan_valid_ips")
	b.ReportMetric(staleShare*100, "single_scan_stale_pct")
}

// BenchmarkAblationBinWidth sweeps the last-reboot bin width and reports
// pair precision/recall per width, locating the paper's 10s/20s knee.
func BenchmarkAblationBinWidth(b *testing.B) {
	e := sharedEnv(b)
	truth := map[netip.Addr]int{}
	for _, d := range e.World.Devices {
		for _, a := range d.AllAddrs() {
			truth[a] = d.ID
		}
	}
	for _, bin := range []alias.Binning{alias.BinExact, alias.BinRound, alias.BinDiv20} {
		b.Run(bin.String(), func(b *testing.B) {
			var p, r float64
			for i := 0; i < b.N; i++ {
				sets := alias.Resolve(e.V4Filter.Valid, alias.Variant{Bin: bin, BothScans: true})
				inferred := make([]analysis.AddrSet, 0, len(sets))
				for _, s := range sets {
					as := make(analysis.AddrSet, 0, len(s.Members))
					for _, m := range s.Members {
						as = append(as, m.IP)
					}
					inferred = append(inferred, as)
				}
				p, r = analysis.PrecisionRecall(inferred, truth)
			}
			b.ReportMetric(p, "precision")
			b.ReportMetric(r, "recall")
		})
	}
}

// BenchmarkAblationTupleKey contrasts alias resolution keyed on the engine
// ID alone with the full (engine ID, boots, last reboot) key: the former
// merges the cloned-firmware populations into giant false sets.
func BenchmarkAblationTupleKey(b *testing.B) {
	e := sharedEnv(b)
	var idOnlyLargest, fullLargest, falseMerges int
	for i := 0; i < b.N; i++ {
		// Engine-ID-only grouping: one pass building size and ground-truth
		// device counts per group.
		sizes := map[string]int{}
		devs := map[string]map[int]bool{}
		for _, m := range e.V4Filter.Valid {
			k := m.EngineIDKey()
			sizes[k]++
			if d := e.World.DeviceAt(m.IP); d != nil {
				if devs[k] == nil {
					devs[k] = map[int]bool{}
				}
				devs[k][d.ID] = true
			}
		}
		idOnlyLargest, falseMerges = 0, 0
		for k, n := range sizes {
			if n > idOnlyLargest {
				idOnlyLargest = n
			}
			if len(devs[k]) > 1 {
				falseMerges++
			}
		}
		fullLargest = 0
		for _, s := range e.V4Sets {
			if s.Size() > fullLargest {
				fullLargest = s.Size()
			}
		}
	}
	b.ReportMetric(float64(idOnlyLargest), "largest_idonly_set")
	b.ReportMetric(float64(fullLargest), "largest_full_key_set")
	b.ReportMetric(float64(falseMerges), "idonly_false_merged_groups")
}

// BenchmarkAblationScanOrder compares permuted against linear target order:
// the permutation spreads probes so no /16 sees a burst.
func BenchmarkAblationScanOrder(b *testing.B) {
	prefixes := []netip.Prefix{netip.MustParsePrefix("10.0.0.0/12")}
	window := 4096
	burst := func(next func() (netip.Addr, bool)) int {
		counts := map[uint32]int{}
		maxBurst := 0
		for i := 0; i < window; i++ {
			a, ok := next()
			if !ok {
				break
			}
			k := iputilV4ToUint(a) >> 16
			counts[k]++
			if counts[k] > maxBurst {
				maxBurst = counts[k]
			}
		}
		return maxBurst
	}
	var permBurst, linBurst int
	for i := 0; i < b.N; i++ {
		space, err := scanner.NewPrefixSpace(prefixes, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		permBurst = burst(space.Next)
		lin := uint32(0)
		linBurst = burst(func() (netip.Addr, bool) {
			a := netip.AddrFrom4([4]byte{10, byte(lin >> 16), byte(lin >> 8), byte(lin)})
			lin++
			return a, true
		})
	}
	b.ReportMetric(float64(permBurst), "perm_max_per_16")
	b.ReportMetric(float64(linBurst), "linear_max_per_16")
}

func iputilV4ToUint(a netip.Addr) uint32 {
	b4 := a.As4()
	return uint32(b4[0])<<24 | uint32(b4[1])<<16 | uint32(b4[2])<<8 | uint32(b4[3])
}

// --- Micro-benchmarks of the measurement primitive ---

func BenchmarkDiscoveryProbeEncode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := snmp.EncodeDiscoveryRequest(int64(i), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscoveryResponseParse(b *testing.B) {
	rep := snmp.NewDiscoveryReport(snmp.NewDiscoveryRequest(1, 1),
		[]byte{0x80, 0x00, 0x07, 0xc7, 0x03, 0x74, 0x8e, 0xf8, 0x31, 0xdb, 0x80},
		148, 10043812, 1)
	wire, err := rep.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snmp.ParseDiscoveryResponse(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullCampaign measures one complete simulated IPv4 campaign
// (world reuse, scan + collect) — the end-to-end cost of a "scan the
// Internet" run at default scale. Sub-benchmarks vary the engine's worker
// count: workers=1 is the seed's single-threaded loop, the others show the
// sharded engine's speedup. Results are identical for every worker count;
// probes/s is the wall-clock throughput figure of merit.
func BenchmarkFullCampaign(b *testing.B) {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			w := netsim.Generate(netsim.DefaultConfig(99))
			prefixes := w.ScanPrefixes4()
			b.ResetTimer()
			var probes float64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				w.Clock.Set(w.Cfg.StartTime.Add(time.Duration(15+i) * 24 * time.Hour))
				w.BeginScan()
				targets, err := scanner.NewPrefixSpace(prefixes, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				res, err := scanner.Scan(w.NewTransport(), targets, scanner.Config{
					Rate: 5000, Batch: 256, Clock: w.Clock, Seed: int64(i), Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				probes += float64(res.Sent)
				b.ReportMetric(float64(res.Sent), "probes")
				b.ReportMetric(float64(len(res.Responses)), "responses")
			}
			b.ReportMetric(probes/time.Since(start).Seconds(), "probes/s")
		})
	}
}
