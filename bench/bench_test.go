// Package bench runs the continuous benchmark suite (internal/benchsuite)
// under `go test -bench` and pins the codec hot paths at zero allocations.
// `make bench-smoke` runs a short pass of this package in CI; `make
// bench-json` (cmd/benchjson) runs the same bodies and writes the root
// BENCH_*.json baselines.
package bench

import (
	"fmt"
	"testing"

	"snmpv3fp/internal/benchsuite"
)

func BenchmarkScanCampaign(b *testing.B)   { benchScanCampaign(b) }
func BenchmarkIcmpTsCampaign(b *testing.B) { benchIcmpTsCampaign(b) }

// BenchmarkScanScaling sweeps the campaign over the (workers, batch) grid,
// reporting probes/s per point: the pps-vs-configuration curve behind the
// batch transport tuning (DESIGN.md §13).
func BenchmarkScanScaling(b *testing.B) {
	for _, workers := range benchsuite.ScanScalingGrid.Workers {
		for _, batch := range benchsuite.ScanScalingGrid.Batches {
			b.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch),
				benchsuite.ScanScaling(workers, batch))
		}
	}
}
func BenchmarkCollectResponses(b *testing.B)   { benchCollectResponses(b) }
func BenchmarkEncodeProbe(b *testing.B)        { benchEncodeProbe(b) }
func BenchmarkParseResponse(b *testing.B)      { benchParseResponse(b) }
func BenchmarkStoreIngest(b *testing.B)        { benchStoreIngest(b) }
func BenchmarkStoreDurableIngest(b *testing.B) { benchStoreDurableIngest(b) }
func BenchmarkStoreCompact(b *testing.B)       { benchStoreCompact(b) }
func BenchmarkServeIP(b *testing.B)            { benchServeIP(b) }
func BenchmarkServeIPWarm(b *testing.B)        { benchServeIPWarm(b) }
func BenchmarkServeIPMissBloom(b *testing.B)   { benchServeIPMissBloom(b) }
func BenchmarkServeIPMissNoBloom(b *testing.B) { benchServeIPMissNoBloom(b) }
func BenchmarkServeVendors(b *testing.B)       { benchServeVendors(b) }
func BenchmarkServeStats(b *testing.B)         { benchServeStats(b) }
