package bench

import (
	"testing"

	"snmpv3fp/internal/snmp"
)

// TestCodecZeroAllocs is the bench-smoke tripwire pinning the campaign codec
// hot paths at zero allocations per operation: probe encode, report encode,
// response parse and ID extraction, each with reused buffers, exactly as the
// scanner, prober and simulator run them. The per-package equivalents in
// internal/ber and internal/snmp cover the primitives; this one guards the
// composed paths the benchmarks measure.
func TestCodecZeroAllocs(t *testing.T) {
	engineID := []byte{0x80, 0x00, 0x1F, 0x88, 0x04, 1, 2, 3, 4, 5}
	report := snmp.AppendDiscoveryReport(nil, 7, 7, engineID, 3, 123456, 9)
	probeDst := make([]byte, 0, 128)
	reportDst := make([]byte, 0, 256)
	resp := &snmp.DiscoveryResponse{ReportOID: make([]uint32, 0, 16)}

	cases := []struct {
		name string
		fn   func()
	}{
		{"AppendDiscoveryRequest", func() {
			probeDst = snmp.AppendDiscoveryRequest(probeDst[:0], 123456, 654321)
		}},
		{"AppendDiscoveryReport", func() {
			reportDst = snmp.AppendDiscoveryReport(reportDst[:0], 7, 7, engineID, 3, 123456, 9)
		}},
		{"ParseDiscoveryResponseInto", func() {
			if err := snmp.ParseDiscoveryResponseInto(resp, report); err != nil {
				t.Fatal(err)
			}
		}},
		{"ParseRequestIDs", func() {
			if _, _, err := snmp.ParseRequestIDs(report); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}
