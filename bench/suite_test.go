package bench

import (
	"testing"

	"snmpv3fp/internal/benchsuite"
)

// Thin aliases so bench_test.go reads as the benchmark index.
var (
	benchScanCampaign       = benchsuite.ScanCampaign
	benchIcmpTsCampaign     = benchsuite.IcmpTsCampaign
	benchCollectResponses   = benchsuite.CollectResponses
	benchEncodeProbe        = benchsuite.EncodeProbe
	benchParseResponse      = benchsuite.ParseResponse
	benchStoreIngest        = benchsuite.StoreIngest
	benchStoreDurableIngest = benchsuite.StoreDurableIngest
	benchStoreCompact       = benchsuite.StoreCompact
	benchServeIP            = benchsuite.ServeIP
	benchServeIPWarm        = benchsuite.ServeIPWarm
	benchServeIPMissBloom   = benchsuite.ServeIPMissBloom
	benchServeIPMissNoBloom = benchsuite.ServeIPMissNoBloom
	benchServeVendors       = benchsuite.ServeVendors
	benchServeStats         = benchsuite.ServeStats
)

var _ = testing.Verbose
