# snmpv3fp — build, test and reproduction targets.

GO ?= go

.PHONY: all build vet test test-short race bench bench-smoke bench-gate bench-json bench-serve-json smoke-serve metrics-smoke durability-smoke dist-smoke replica-smoke reproduce examples ci fuzz-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full suite, including the full-scale pipeline validation (~30 s extra).
test:
	$(GO) test ./...

# Fast suite for iteration.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# What CI runs (see .github/workflows/ci.yml).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race -shuffle=on ./...
	$(MAKE) fuzz-smoke
	$(MAKE) smoke-serve
	$(MAKE) metrics-smoke
	$(MAKE) durability-smoke
	$(MAKE) dist-smoke
	$(MAKE) replica-smoke
	$(MAKE) bench-smoke
	$(MAKE) bench-gate

# 10 seconds of native fuzzing per target. go test accepts one -fuzz target
# per invocation, so loop over every FuzzXxx the fuzzing packages list.
fuzz-smoke:
	@for pkg in ./internal/ber ./internal/snmp ./internal/probe ./internal/vantage; do \
		for t in $$($(GO) test $$pkg -list '^Fuzz' | grep '^Fuzz'); do \
			echo "fuzz $$pkg $$t"; \
			$(GO) test $$pkg -run '^$$' -fuzz "^$$t$$" -fuzztime 10s || exit 1; \
		done; \
	done

# Every paper table/figure as benchmarks, plus the ablations.
bench:
	$(GO) test -bench=. -benchmem

# One cheap iteration of every continuous benchmark plus the allocation
# regression tests — the CI tripwire that the hot paths stayed hot. Full
# numbers come from bench-json.
bench-smoke:
	$(GO) test ./bench -run 'Alloc' -bench=. -benchtime=1x -benchmem

# Scan-campaign regression gate: re-measure ScanCampaign and fail when it
# lands more than 15% above the checked-in BENCH_scan.json baseline. The
# headroom absorbs runner noise; a hot-path regression trips it immediately.
bench-gate:
	$(GO) run ./cmd/benchjson -gate 1.15

# Refresh the committed benchmark baselines: runs the continuous suite at
# full benchtime and rewrites BENCH_scan.json / BENCH_store.json /
# BENCH_serve.json at the repo root. Manual-only (numbers from loaded CI
# runners are not baselines); run on a quiet machine before committing.
bench-json:
	$(GO) run ./cmd/benchjson

# Store+serve latency benchmark (p50/p99 per endpoint) as one-off JSON;
# complements the allocation-centric bench-json suite.
bench-serve-json:
	$(GO) run ./cmd/snmpfpd -bench-json BENCH_serve_latency.json
	@cat BENCH_serve_latency.json

# End-to-end daemon smoke: ingest a simulated world, self-query /v1/stats,
# /v1/vendors and /v1/metrics over HTTP.
smoke-serve:
	$(GO) run ./cmd/snmpfpd -sim -smoke

# Observability smoke: run the daemon's self-test and assert the key metric
# families from every layer (scanner, store, HTTP) are present and non-zero
# in the /v1/metrics exposition.
metrics-smoke:
	@$(GO) run ./cmd/snmpfpd -sim -smoke 2>/dev/null | awk ' \
		/^snmpfp_scan_probes_sent_total / && $$2+0 > 0 { seen["scan"]=1 } \
		/^snmpfp_store_ingested_total / && $$2+0 > 0 { seen["store"]=1 } \
		/^snmpfp_http_requests_total\{/ && $$2+0 > 0 { seen["http"]=1 } \
		END { \
			ok = 1; \
			split("scan store http", want, " "); \
			for (i in want) if (!(want[i] in seen)) { \
				printf "metrics-smoke: family %s missing or zero\n", want[i]; ok = 0; \
			} \
			if (!ok) exit 1; \
			print "metrics-smoke: scanner, store and HTTP families present and non-zero"; \
		}'

# Durability smoke: SIGKILL a live ingesting store process mid-flight,
# reopen its directory, and verify every acknowledged sample is recovered
# exactly once (internal/store/kill_test.go), under the race detector.
durability-smoke:
	$(GO) test -race -run TestKillDuringIngest -count=1 -v ./internal/store

# Distributed smoke: build snmpcoord and snmpscan, spawn one coordinator and
# three vantage worker processes over loopback TCP against a seeded netsim
# world (one worker rigged to die mid-campaign), and verify the merged
# campaign output is byte-identical to a single-process scan, the shutdown
# is clean, and the merged campaign landed in the durable store
# (internal/vantage/dist_smoke_test.go), under the race detector.
dist-smoke:
	$(GO) test -race -run TestDistSmoke -count=1 -v ./internal/vantage

# Read scale-out smoke: one durable primary shipping sealed segments over
# loopback TCP to two read replicas — one severed mid-ship and reconnected —
# then every /v1/* endpoint compared byte-for-byte across all three servers
# (internal/serve/replica_test.go), under the race detector.
replica-smoke:
	$(GO) test -race -run TestReplicaSmoke -count=1 -v ./internal/serve

# The complete evaluation, paper order, full scale.
reproduce:
	$(GO) run ./cmd/reproduce

# Run all runnable examples.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/labtest
	$(GO) run ./examples/aliasres
	$(GO) run ./examples/vendorsurvey
	$(GO) run ./examples/security
	$(GO) run ./examples/monitoring

clean:
	$(GO) clean ./...
