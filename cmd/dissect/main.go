// Command dissect renders SNMP datagrams as Wireshark-style protocol trees
// (the paper's Figures 2 and 3).
//
// With no arguments it dissects a freshly built discovery request and the
// paper's Figure 3 Brocade response. Hex dumps can be passed as arguments
// or piped on stdin (one hex string per line, whitespace ignored).
package main

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"os"
	"strings"

	"snmpv3fp/internal/dissect"
	"snmpv3fp/internal/snmp"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		stat, _ := os.Stdin.Stat()
		if stat != nil && stat.Mode()&os.ModeCharDevice == 0 {
			scanStdin()
			return
		}
		showExamples()
		return
	}
	for _, a := range args {
		dissectHex(a)
	}
}

func scanStdin() {
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		dissectHex(line)
	}
}

func dissectHex(s string) {
	s = strings.NewReplacer(" ", "", ":", "", "0x", "").Replace(s)
	payload, err := hex.DecodeString(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dissect: bad hex: %v\n", err)
		os.Exit(1)
	}
	tree, err := dissect.Message(payload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dissect: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(tree)
	fmt.Println()
}

func showExamples() {
	req, err := snmp.EncodeDiscoveryRequest(821490644, 1565454380)
	if err != nil {
		panic(err)
	}
	fmt.Printf("# discovery request (%d bytes): %x\n", len(req), req)
	tree, _ := dissect.Message(req)
	fmt.Print(tree)
	fmt.Println()

	rep := snmp.NewDiscoveryReport(snmp.NewDiscoveryRequest(821490644, 1565454380),
		[]byte{0x80, 0x00, 0x07, 0xc7, 0x03, 0x74, 0x8e, 0xf8, 0x31, 0xdb, 0x80},
		148, 10043812, 1)
	wire, err := rep.Encode()
	if err != nil {
		panic(err)
	}
	fmt.Printf("# discovery response (%d bytes): %x\n", len(wire), wire)
	tree, _ = dissect.Message(wire)
	fmt.Print(tree)
}
