// Command snmptrapd receives SNMP traps on a UDP port and prints each as a
// dissected protocol tree. It understands SNMPv1 Trap-PDUs and SNMPv2c/v3
// notification messages.
//
//	snmptrapd -listen 127.0.0.1:16200
//
// Pair it with a lab agent configured with that trap sink:
//
//	snmpagent -os cisco-ios -community traps ... (the agent emits a
//	coldStart trap on start when a sink is configured)
package main

import (
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"time"

	"snmpv3fp/internal/dissect"
	"snmpv3fp/internal/snmp"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:16200", "address to receive traps on")
	count := flag.Int("count", 0, "exit after N traps (0 = run forever)")
	flag.Parse()

	ap, err := netip.ParseAddrPort(*listen)
	if err != nil {
		fatal(err)
	}
	conn, err := net.ListenUDP("udp", net.UDPAddrFromAddrPort(ap))
	if err != nil {
		fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(os.Stderr, "snmptrapd: listening on %v\n", conn.LocalAddr())

	buf := make([]byte, 4096)
	received := 0
	for {
		n, from, err := conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("---- trap from %v at %s ----\n", from, time.Now().Format(time.RFC3339))
		if out, ok := render(buf[:n]); ok {
			fmt.Print(out)
		} else {
			fmt.Printf("(unparseable datagram, %d bytes: %x)\n", n, buf[:n])
		}
		received++
		if *count > 0 && received >= *count {
			return
		}
	}
}

// render dissects a trap datagram, trying the SNMPv1 trap layout first and
// falling back to the generic dissector for v2c/v3 notifications.
func render(payload []byte) (string, bool) {
	if community, trap, err := snmp.DecodeTrapV1(payload); err == nil {
		s := fmt.Sprintf("SNMPv1 Trap (community %q)\n", community)
		s += fmt.Sprintf("    enterprise:    %s\n", snmp.OIDString(trap.Enterprise))
		s += fmt.Sprintf("    agent-addr:    %d.%d.%d.%d\n",
			trap.AgentAddr[0], trap.AgentAddr[1], trap.AgentAddr[2], trap.AgentAddr[3])
		s += fmt.Sprintf("    generic-trap:  %s (%d)\n", genericName(trap.GenericTrap), trap.GenericTrap)
		s += fmt.Sprintf("    specific-trap: %d\n", trap.SpecificTrap)
		s += fmt.Sprintf("    time-stamp:    %d ticks\n", trap.Timestamp)
		for _, vb := range trap.VarBinds {
			s += fmt.Sprintf("    %s = %s\n", snmp.OIDString(vb.Name), vb.Value)
		}
		return s, true
	}
	if out, err := dissect.Message(payload); err == nil {
		return out, true
	}
	return "", false
}

func genericName(code int64) string {
	names := map[int64]string{
		snmp.TrapColdStart: "coldStart", snmp.TrapWarmStart: "warmStart",
		snmp.TrapLinkDown: "linkDown", snmp.TrapLinkUp: "linkUp",
		snmp.TrapAuthFailure:        "authenticationFailure",
		snmp.TrapEGPNeighborLoss:    "egpNeighborLoss",
		snmp.TrapEnterpriseSpecific: "enterpriseSpecific",
	}
	if n, ok := names[code]; ok {
		return n
	}
	return "unknown"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "snmptrapd: %v\n", err)
	os.Exit(1)
}
