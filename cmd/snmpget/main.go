// Command snmpget is a small SNMP client: Get or walk OIDs against an
// agent over UDP, with SNMPv2c community or authenticated SNMPv3 (USM)
// credentials. Against a target without credentials, -discover performs
// the paper's unauthenticated engine discovery.
//
//	snmpget -addr 127.0.0.1:16161 -community public 1.3.6.1.2.1.1.1.0
//	snmpget -addr 127.0.0.1:16161 -community public -walk 1.3.6.1.2.1
//	snmpget -addr 127.0.0.1:16161 -v3-user monitor -v3-pass s3cret 1.3.6.1.2.1.1.1.0
//	snmpget -addr 127.0.0.1:16161 -discover
package main

import (
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"strconv"
	"strings"
	"time"

	"snmpv3fp/internal/ber"
	"snmpv3fp/internal/labsim"
	"snmpv3fp/internal/snmp"
	"snmpv3fp/internal/usm"
)

func main() {
	addr := flag.String("addr", "", "agent address, host:port")
	community := flag.String("community", "", "SNMPv2c community")
	v3User := flag.String("v3-user", "", "SNMPv3 user name (authNoPriv)")
	v3Pass := flag.String("v3-pass", "", "SNMPv3 authentication password")
	v3Proto := flag.String("v3-proto", "sha1", "SNMPv3 auth protocol: md5 or sha1")
	walk := flag.Bool("walk", false, "GetNext-walk the subtree instead of a single Get")
	bulk := flag.Bool("bulk", false, "use GetBulk for walking (v2c only)")
	maxReps := flag.Int("max-repetitions", 10, "GetBulk max-repetitions")
	discover := flag.Bool("discover", false, "unauthenticated engine discovery only")
	timeout := flag.Duration("timeout", 2*time.Second, "request timeout")
	flag.Parse()

	if *addr == "" {
		fatal(fmt.Errorf("-addr is required"))
	}
	ap, err := netip.ParseAddrPort(*addr)
	if err != nil {
		fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, net.UDPAddrFromAddrPort(ap))
	if err != nil {
		fatal(err)
	}
	defer conn.Close()
	cl := &client{conn: conn, timeout: *timeout}

	if *discover {
		dr, err := cl.discover()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("engine ID:    0x%x\nengine boots: %d\nengine time:  %d s\nlast reboot:  %s\n",
			dr.EngineID, dr.EngineBoots, dr.EngineTime,
			time.Now().Add(-time.Duration(dr.EngineTime)*time.Second).Format(time.RFC3339))
		return
	}

	oids := make([][]uint32, 0, flag.NArg())
	for _, arg := range flag.Args() {
		oid, err := parseOID(arg)
		if err != nil {
			fatal(err)
		}
		oids = append(oids, oid)
	}
	if len(oids) == 0 {
		fatal(fmt.Errorf("no OIDs given"))
	}

	switch {
	case *v3User != "":
		proto := usm.AuthSHA1
		if strings.EqualFold(*v3Proto, "md5") {
			proto = usm.AuthMD5
		}
		user := labsim.V3User{Name: *v3User, Protocol: proto, Password: *v3Pass}
		if err := cl.v3Get(user, oids); err != nil {
			fatal(err)
		}
	case *community != "":
		switch {
		case *bulk:
			if err := cl.bulkWalk(*community, oids[0], *maxReps); err != nil {
				fatal(err)
			}
		case *walk:
			if err := cl.walk(*community, oids[0]); err != nil {
				fatal(err)
			}
		default:
			if err := cl.communityGet(*community, oids); err != nil {
				fatal(err)
			}
		}
	default:
		fatal(fmt.Errorf("need -community, -v3-user, or -discover"))
	}
}

type client struct {
	conn    *net.UDPConn
	timeout time.Duration
	reqID   int64
}

func (c *client) exchange(req []byte) ([]byte, error) {
	if _, err := c.conn.Write(req); err != nil {
		return nil, err
	}
	c.conn.SetReadDeadline(time.Now().Add(c.timeout))
	buf := make([]byte, 4096)
	n, err := c.conn.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

func (c *client) discover() (*snmp.DiscoveryResponse, error) {
	c.reqID++
	wire, err := snmp.EncodeDiscoveryRequest(c.reqID, c.reqID)
	if err != nil {
		return nil, err
	}
	resp, err := c.exchange(wire)
	if err != nil {
		return nil, err
	}
	return snmp.ParseDiscoveryResponse(resp)
}

func (c *client) communityGet(community string, oids [][]uint32) error {
	c.reqID++
	vbs := make([]snmp.VarBind, 0, len(oids))
	for _, oid := range oids {
		vbs = append(vbs, snmp.VarBind{Name: oid, Value: snmp.NullValue()})
	}
	req := &snmp.CommunityMessage{
		Version: snmp.V2c, Community: []byte(community),
		PDU: &snmp.PDU{Type: snmp.PDUGetRequest, RequestID: c.reqID, VarBinds: vbs},
	}
	wire, err := req.Encode()
	if err != nil {
		return err
	}
	resp, err := c.exchange(wire)
	if err != nil {
		return err
	}
	msg, err := snmp.DecodeCommunity(resp)
	if err != nil {
		return err
	}
	printVarBinds(msg.PDU.VarBinds)
	return nil
}

func (c *client) walk(community string, root []uint32) error {
	cur := root
	for steps := 0; steps < 1000; steps++ {
		c.reqID++
		req := &snmp.CommunityMessage{
			Version: snmp.V2c, Community: []byte(community),
			PDU: &snmp.PDU{Type: snmp.PDUGetNextRequest, RequestID: c.reqID,
				VarBinds: []snmp.VarBind{{Name: cur, Value: snmp.NullValue()}}},
		}
		wire, err := req.Encode()
		if err != nil {
			return err
		}
		resp, err := c.exchange(wire)
		if err != nil {
			return err
		}
		msg, err := snmp.DecodeCommunity(resp)
		if err != nil {
			return err
		}
		vb := msg.PDU.VarBinds[0]
		if vb.Value.Tag == ber.TagEndOfMibView || !hasPrefix(vb.Name, root) {
			return nil
		}
		printVarBinds([]snmp.VarBind{vb})
		cur = vb.Name
	}
	return fmt.Errorf("walk exceeded 1000 steps")
}

// bulkWalk walks a subtree with GetBulk requests.
func (c *client) bulkWalk(community string, root []uint32, maxReps int) error {
	cur := root
	for steps := 0; steps < 1000; steps++ {
		c.reqID++
		req := &snmp.CommunityMessage{
			Version: snmp.V2c, Community: []byte(community),
			PDU: &snmp.PDU{Type: snmp.PDUGetBulkRequest, RequestID: c.reqID,
				ErrorIndex: int64(maxReps),
				VarBinds:   []snmp.VarBind{{Name: cur, Value: snmp.NullValue()}}},
		}
		wire, err := req.Encode()
		if err != nil {
			return err
		}
		resp, err := c.exchange(wire)
		if err != nil {
			return err
		}
		msg, err := snmp.DecodeCommunity(resp)
		if err != nil {
			return err
		}
		if len(msg.PDU.VarBinds) == 0 {
			return nil
		}
		for _, vb := range msg.PDU.VarBinds {
			if vb.Value.Tag == ber.TagEndOfMibView || !hasPrefix(vb.Name, root) {
				return nil
			}
			printVarBinds([]snmp.VarBind{vb})
			cur = vb.Name
		}
	}
	return fmt.Errorf("bulk walk exceeded 1000 steps")
}

func (c *client) v3Get(user labsim.V3User, oids [][]uint32) error {
	dr, err := c.discover()
	if err != nil {
		return fmt.Errorf("discovery: %w", err)
	}
	for _, oid := range oids {
		c.reqID++
		wire, err := labsim.NewAuthenticatedGet(user, dr.EngineID, dr.EngineBoots, dr.EngineTime, c.reqID, oid)
		if err != nil {
			return err
		}
		resp, err := c.exchange(wire)
		if err != nil {
			return err
		}
		msg, err := snmp.DecodeV3(resp)
		if err != nil && err != snmp.ErrEncrypted {
			return err
		}
		if msg.ScopedPDU.PDU == nil {
			return fmt.Errorf("empty response")
		}
		if msg.ScopedPDU.PDU.Type == snmp.PDUReport {
			return fmt.Errorf("agent rejected the request: %s",
				snmp.OIDString(msg.ScopedPDU.PDU.VarBinds[0].Name))
		}
		printVarBinds(msg.ScopedPDU.PDU.VarBinds)
	}
	return nil
}

func printVarBinds(vbs []snmp.VarBind) {
	for _, vb := range vbs {
		fmt.Printf("%s = %s\n", snmp.OIDString(vb.Name), vb.Value)
	}
}

func hasPrefix(oid, prefix []uint32) bool {
	if len(oid) < len(prefix) {
		return false
	}
	for i := range prefix {
		if oid[i] != prefix[i] {
			return false
		}
	}
	return true
}

func parseOID(s string) ([]uint32, error) {
	parts := strings.Split(strings.TrimPrefix(s, "."), ".")
	oid := make([]uint32, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad OID %q: %w", s, err)
		}
		oid = append(oid, uint32(v))
	}
	if len(oid) < 2 {
		return nil, fmt.Errorf("OID %q too short", s)
	}
	return oid, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "snmpget: %v\n", err)
	os.Exit(1)
}
