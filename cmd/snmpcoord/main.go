// Command snmpcoord coordinates a distributed scan campaign: it listens for
// snmpscan -vantage workers, leases them ZMap-style shards of the simulated
// target space, folds their streamed partial results into one campaign —
// byte-identical to a single-process scan of the same seed and
// configuration — and prints the merged campaign exactly as snmpscan would.
//
//	snmpcoord -listen 127.0.0.1:7161 -shards 8 -sim-seed 7 &
//	snmpscan -vantage 127.0.0.1:7161 -vantage-name eu-west &
//	snmpscan -vantage 127.0.0.1:7161 -vantage-name us-east &
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"snmpv3fp/internal/core"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/obs"
	"snmpv3fp/internal/records"
	"snmpv3fp/internal/store"
	"snmpv3fp/internal/vantage"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "TCP address to accept vantage connections on")
	addrFile := flag.String("addr-file", "", "write the bound listen address to this file (for scripted vantage launch)")
	shards := flag.Int("shards", 4, "number of shard leases to split the target space into")
	viewpoints := flag.Int("viewpoints", 1, "vantage viewpoints per shard (viewpoint 0 is the merged reference)")
	rate := flag.Int("rate", 5000, "probe rate (packets per second)")
	timeout := flag.Duration("timeout", 0, "post-send drain timeout (0 = engine default)")
	seed := flag.Int64("seed", 1, "campaign permutation seed")
	workers := flag.Int("workers", 1, "send workers per vantage scan")
	retries := flag.Int("retries", 0, "extra passes re-probing non-responders")
	simSeed := flag.Int64("sim-seed", 1, "simulated world seed")
	simScan := flag.Int("sim-scan", 1, "simulated campaign number: 1 (day 15) or 2 (day 21)")
	simHostile := flag.Bool("sim-hostile", false, "route the campaign through the hostile path-fault layer")
	simFull := flag.Bool("sim-full", false, "scan the full-size simulated world instead of the tiny one")
	heartbeatTTL := flag.Duration("heartbeat-ttl", 5*time.Second, "re-lease a shard after this much vantage silence")
	storeDir := flag.String("store", "", "ingest the merged campaign into a durable store at this directory")
	jsonOut := flag.Bool("json", false, "emit NDJSON records instead of text")
	metrics := flag.Bool("metrics", false, "dump coordinator metrics to stderr after the merge")
	quiet := flag.Bool("quiet", false, "suppress progress logging on stderr")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	day := 15
	if *simScan == 2 {
		day = 21
	}
	var faults *netsim.FaultProfile
	if *simHostile {
		faults = netsim.HostileProfile()
	}
	cfg := vantage.CoordConfig{
		Spec: vantage.CampaignSpec{
			CampaignSeed: *seed,
			SimSeed:      *simSeed,
			SimFull:      *simFull,
			ScanDay:      day,
			ScanEpochs:   *simScan,
			Rate:         *rate,
			Workers:      *workers,
			Retries:      *retries,
			Timeout:      *timeout,
			TotalShards:  *shards,
			Faults:       faults,
		},
		Viewpoints:   *viewpoints,
		HeartbeatTTL: *heartbeatTTL,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "snmpcoord: "+format+"\n", args...)
		}
	}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	if *storeDir != "" {
		st, err := store.Open(store.Options{Dir: *storeDir, Obs: reg})
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		cfg.Store = st
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "snmpcoord: listening on %s\n", l.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(l.Addr().String()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}

	coord := vantage.NewCoordinator(cfg)
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		coord.Serve(l)
	}()
	out, err := coord.Wait(ctx)
	// Stop accepting and let every handler finish its CampaignDone goodbye
	// before printing, so vantage processes always see a clean shutdown.
	l.Close()
	<-serveDone
	if err != nil {
		fatal(err)
	}

	emit(out.Campaign, *jsonOut)
	for _, a := range out.Agreement[1:] {
		fmt.Fprintf(os.Stderr, "viewpoint %d: %d responders, %d shared with reference\n",
			a.Viewpoint, a.Responders, a.SharedWithRef)
	}
	if cfg.Store != nil {
		fmt.Fprintf(os.Stderr, "stored campaign %d (%d observations)\n", out.CampaignSeq, len(out.Campaign.ByIP))
	}
	if *metrics {
		if err := reg.WritePrometheus(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

func emit(c *core.Campaign, jsonOut bool) {
	if jsonOut {
		if err := records.WriteCampaign(os.Stdout, c); err != nil {
			fatal(err)
		}
	} else {
		printCampaign(c)
	}
	fmt.Fprintf(os.Stderr, "%d responsive IPs, %d response packets (%d malformed, %d truncated, %d mismatched msgID, %d duplicates, %d off-path rejected)\n",
		len(c.ByIP), c.TotalPackets, c.Malformed, c.Truncated, c.Mismatched, c.Duplicates, c.OffPath)
}

func printCampaign(c *core.Campaign) {
	out := make([]*core.Observation, 0, len(c.ByIP))
	for _, o := range c.ByIP {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP.Less(out[j].IP) })
	for _, o := range out {
		fp := core.FingerprintEngineID(o.EngineID)
		fmt.Printf("%-40v engineID=0x%x boots=%d time=%d lastReboot=%s vendor=%s\n",
			o.IP, o.EngineID, o.EngineBoots, o.EngineTime,
			o.LastReboot().UTC().Format(time.RFC3339), fp.VendorLabel())
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "snmpcoord: %v\n", err)
	os.Exit(1)
}
