// Command snmpalias runs the paper's offline analysis over two captured
// campaigns: validation (Section 4.4), alias resolution (Section 5) and
// vendor fingerprinting (Section 6), reading the NDJSON files that
// `snmpscan -json` writes.
//
//	snmpscan -json ... > scan1.ndjson    # first campaign
//	snmpscan -json ... > scan2.ndjson    # second campaign, days later
//	snmpalias -scan1 scan1.ndjson -scan2 scan2.ndjson
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"snmpv3fp"
	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/records"
	"snmpv3fp/internal/report"
)

func main() {
	scan1Path := flag.String("scan1", "", "NDJSON file of the first campaign")
	scan2Path := flag.String("scan2", "", "NDJSON file of the second campaign")
	showSets := flag.Int("sets", 10, "print the N largest alias sets")
	variant := flag.String("variant", "div20-both", "matching rule: exact|round|div20 x -first|-both (e.g. div20-both)")
	flag.Parse()

	if *scan1Path == "" || *scan2Path == "" {
		fmt.Fprintln(os.Stderr, "snmpalias: -scan1 and -scan2 are required")
		os.Exit(2)
	}
	c1 := loadCampaign(*scan1Path)
	c2 := loadCampaign(*scan2Path)

	rep := snmpv3fp.Validate(c1, c2)
	fmt.Printf("scan 1: %d IPs; scan 2: %d IPs; overlap: %d\n",
		rep.Scan1IPs, rep.Scan2IPs, rep.Overlap)
	rows := [][]string{{"Filter step", "Removed"}}
	for _, s := range rep.Steps {
		rows = append(rows, []string{s.Name, report.Count(s.Removed)})
	}
	fmt.Println(report.Table("Validation (Section 4.4)", rows))
	fmt.Printf("valid IPs: %d\n\n", len(rep.Valid))

	v, err := parseVariant(*variant)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snmpalias: %v\n", err)
		os.Exit(2)
	}
	sets := snmpv3fp.ResolveAliases(rep.Valid, v)
	st := alias.Summarize(sets)
	fmt.Printf("alias sets (%s): %d total, %d non-singleton, %.1f IPs per non-singleton\n\n",
		v.Name(), st.Sets, st.NonSingleton, st.IPsPerNonSingleton())

	// Vendor breakdown.
	vendors := map[string]int{}
	for _, s := range sets {
		vendors[snmpv3fp.FingerprintEngineID(s.Members[0].EngineID).VendorLabel()]++
	}
	names := make([]string, 0, len(vendors))
	for v := range vendors {
		names = append(names, v)
	}
	sort.Slice(names, func(i, j int) bool {
		if vendors[names[i]] != vendors[names[j]] {
			return vendors[names[i]] > vendors[names[j]]
		}
		return names[i] < names[j]
	})
	if len(names) > 10 {
		names = names[:10]
	}
	counts := make([]int, len(names))
	for i, n := range names {
		counts[i] = vendors[n]
	}
	fmt.Println(report.Bar("Devices per vendor (top 10)", names, counts))

	for i, s := range sets {
		if i >= *showSets || s.Singleton() {
			break
		}
		fp := snmpv3fp.FingerprintEngineID(s.Members[0].EngineID)
		fmt.Printf("set %d (%s, %d IPs, %s):", i+1, fp.VendorLabel(), s.Size(), s.Family())
		for j, m := range s.Members {
			if j == 8 {
				fmt.Printf(" …")
				break
			}
			fmt.Printf(" %v", m.IP)
		}
		fmt.Println()
	}
}

func loadCampaign(path string) *snmpv3fp.Campaign {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snmpalias: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	c, err := records.ReadCampaign(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snmpalias: %s: %v\n", path, err)
		os.Exit(1)
	}
	return c
}

func parseVariant(s string) (alias.Variant, error) {
	for _, v := range alias.Variants {
		name := map[string]string{
			"Exact first": "exact-first", "Exact both": "exact-both",
			"Round first": "round-first", "Round both": "round-both",
			"Divide by 20 first": "div20-first", "Divide by 20 both": "div20-both",
			"Divide by 20+round first": "div20round-first", "Divide by 20+round both": "div20round-both",
		}[v.Name()]
		if name == s {
			return v, nil
		}
	}
	return alias.Variant{}, fmt.Errorf("unknown variant %q", s)
}
