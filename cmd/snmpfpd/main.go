// Command snmpfpd is the fingerprint store daemon: it ingests scan
// campaigns — recorded NDJSON files or live scans of the simulated
// Internet — into an append-only observation store and serves fingerprint
// queries over an HTTP JSON API while ingest continues.
//
// Replay recorded campaigns and serve:
//
//	snmpfpd -ingest scan1.ndjson,scan2.ndjson -listen :8161
//
// Run live campaigns against the simulated Internet while serving:
//
//	snmpfpd -sim -sim-seed 7 -sim-campaigns 4 -listen :8161
//
// Self-contained smoke test (ingest a simulated world, query /v1/stats,
// /v1/vendors and /v1/metrics over HTTP, print all three, exit):
//
//	snmpfpd -sim -smoke
//
// Store+serve benchmark (used by `make bench-json`):
//
//	snmpfpd -bench-json BENCH_store.json
//
// Endpoints: /v1/ip/{addr}, /v1/device/{engineID}, /v1/vendors,
// /v1/reboots/{addr}, /v1/fusion, /v1/stats, /v1/metrics; plus
// /debug/pprof/ with -pprof.
//
// Simulated ingest also runs the non-SNMP probe modules listed in
// -sim-protocols after each campaign and stores their alias evidence, so
// /v1/fusion has cross-protocol input to fuse.
//
// One obs.Registry spans the whole daemon — scanner, netsim faults, store
// and HTTP server all publish into it — so /v1/metrics is the single pane
// of glass over a live ingest.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"snmpv3fp/internal/core"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/obs"
	"snmpv3fp/internal/probe"
	"snmpv3fp/internal/records"
	"snmpv3fp/internal/scanner"
	"snmpv3fp/internal/serve"
	"snmpv3fp/internal/store"
)

func main() {
	listen := flag.String("listen", ":8161", "HTTP listen address")
	ingest := flag.String("ingest", "", "comma-separated NDJSON campaign files, ingested in order")
	sim := flag.Bool("sim", false, "ingest live scan campaigns of the simulated Internet")
	simSeed := flag.Int64("sim-seed", 7, "simulated world seed")
	simCampaigns := flag.Int("sim-campaigns", 2, "number of simulated campaigns to run")
	simProtocols := flag.String("sim-protocols", "snmpv3,icmp-ts,ntp", "probe modules run per simulated campaign (non-SNMP ones ingest fusion evidence)")
	rate := flag.Int("rate", 50000, "simulated scan probe rate (packets per second)")
	workers := flag.Int("workers", 4, "simulated scan send workers")
	flushThreshold := flag.Int("flush", 4096, "memtable samples per segment flush")
	dataDir := flag.String("data-dir", "", "durable store directory (WAL + segments); empty keeps the store in memory")
	verify := flag.Bool("verify", false, "checksum and decode every segment sample on open (recovery is lazy by default: indexes are validated, sample blocks on first touch)")
	replListen := flag.String("replicate-listen", "", "TCP address to ship sealed segments to read replicas from (requires -data-dir)")
	replicaOf := flag.String("replica-of", "", "run as a read replica of the primary at this replication address: no ingest, serves the shipped state (requires -data-dir)")
	smoke := flag.Bool("smoke", false, "ingest, self-query /v1/stats, /v1/vendors and /v1/metrics, print, exit")
	pprofFlag := flag.Bool("pprof", false, "also serve net/http/pprof under /debug/pprof/")
	benchJSON := flag.String("bench-json", "", "run the store+serve benchmark, write JSON to this file, exit")
	flag.Parse()

	if *benchJSON != "" {
		runBenchJSON(*benchJSON)
		return
	}
	if *replicaOf != "" {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "snmpfpd: -replica-of requires -data-dir")
			os.Exit(2)
		}
		if *ingest != "" || *sim {
			fmt.Fprintln(os.Stderr, "snmpfpd: a replica cannot ingest; drop -ingest/-sim")
			os.Exit(2)
		}
		runReplica(*replicaOf, *dataDir, *listen, *verify, *pprofFlag)
		return
	}
	if *replListen != "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "snmpfpd: -replicate-listen requires -data-dir (only sealed segments ship)")
		os.Exit(2)
	}
	if *ingest == "" && !*sim {
		fmt.Fprintln(os.Stderr, "snmpfpd: need -ingest, -sim, -replica-of or -bench-json")
		os.Exit(2)
	}

	// One registry for the whole daemon: the store, the HTTP server and
	// every simulated campaign publish into it.
	reg := obs.NewRegistry()
	st, err := store.Open(store.Options{Dir: *dataDir, FlushThreshold: *flushThreshold, Obs: reg, VerifyOnOpen: *verify})
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "snmpfpd: durable store in %s (%d samples on open)\n",
			*dataDir, st.Snapshot().Stats().Ingested)
	}
	if *replListen != "" {
		rln, err := net.Listen("tcp", *replListen)
		if err != nil {
			fatal(err)
		}
		go func() {
			if err := st.ServeReplication(rln); err != nil {
				fmt.Fprintf(os.Stderr, "snmpfpd: replication listener: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "snmpfpd: shipping segments to replicas on %s\n", rln.Addr())
	}
	// Close seals the memtable and fsyncs the final manifest; on the
	// SIGINT/SIGTERM path below it runs before exit, so a clean shutdown
	// never drops buffered samples.
	defer closeStore(st)
	srv := serve.New(st, serve.WithObs(reg))
	var handler http.Handler = srv
	if *pprofFlag {
		root := http.NewServeMux()
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		root.Handle("/", srv)
		handler = root
	}

	// Cancelling this context (SIGINT/SIGTERM) drains scan workers and
	// aborts ingest before the HTTP server shuts down.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	addr := *listen
	if *smoke {
		addr = "127.0.0.1:0" // ephemeral; the daemon queries itself
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "snmpfpd: serving on http://%s\n", ln.Addr())

	// Ingest runs concurrently with serving; queries observe campaigns as
	// they land.
	ingestDone := make(chan error, 1)
	go func() {
		ingestDone <- runIngest(ctx, st, reg, *ingest, *sim, *simSeed, *simCampaigns, *rate, *workers, splitList(*simProtocols))
	}()

	if *smoke {
		if err := <-ingestDone; err != nil {
			fatal(err)
		}
		base := "http://" + ln.Addr().String()
		for _, path := range []string{"/v1/stats", "/v1/vendors", "/v1/fusion", "/v1/metrics"} {
			body, err := httpGet(base + path)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("GET %s\n%s", path, body)
		}
		shutdown(hs)
		return
	}

	select {
	case err := <-ingestDone:
		if err != nil && ctx.Err() == nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "snmpfpd: ingest complete; serving until interrupted")
		<-ctx.Done()
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "snmpfpd: interrupted; shutting down")
	case err := <-serveErr:
		fatal(err)
	}
	shutdown(hs)
}

// runReplica is the -replica-of mode: open (or create) the replica
// directory, follow the primary's replication stream with reconnect
// backoff, and serve the same read-only HTTP API over the shipped state.
func runReplica(primary, dataDir, listen string, verify, pprofFlag bool) {
	reg := obs.NewRegistry()
	r, err := store.OpenReplica(store.ReplicaOptions{Dir: dataDir, Obs: reg, VerifyOnOpen: verify})
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "snmpfpd: replica close: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "snmpfpd: replica of %s in %s (%d samples on open)\n",
		primary, dataDir, r.Snapshot().Stats().Ingested)

	srv := serve.New(r, serve.WithObs(reg))
	var handler http.Handler = srv
	if pprofFlag {
		root := http.NewServeMux()
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.Handle("/", srv)
		handler = root
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "snmpfpd: replica serving on http://%s\n", ln.Addr())

	syncErr := make(chan error, 1)
	go func() { syncErr <- r.SyncLoop(ctx, primary) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "snmpfpd: interrupted; shutting down")
	case err := <-syncErr:
		if err != nil && ctx.Err() == nil {
			fmt.Fprintf(os.Stderr, "snmpfpd: replica sync: %v\n", err)
		}
	case err := <-serveErr:
		fatal(err)
	}
	shutdown(hs)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runIngest feeds the store: NDJSON files first, then simulated campaigns.
func runIngest(ctx context.Context, st *store.Store, reg *obs.Registry, ingest string, sim bool, simSeed int64, simCampaigns, rate, workers int, protocols []string) error {
	if ingest != "" {
		for _, name := range strings.Split(ingest, ",") {
			name = strings.TrimSpace(name)
			c, err := readCampaignFile(name)
			if err != nil {
				return err
			}
			n, err := st.Ingest(ctx, c)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "snmpfpd: campaign %d: %d IPs from %s\n", n, len(c.ByIP), name)
		}
	}
	if sim {
		if err := runSim(ctx, st, reg, simSeed, simCampaigns, rate, workers, protocols); err != nil {
			return err
		}
	}
	return nil
}

func readCampaignFile(name string) (*core.Campaign, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return records.ReadCampaign(f)
}

// runSim scans the simulated Internet repeatedly — campaign i on day
// 15 + 6·(i-1), matching the paper's scan cadence — ingesting each campaign
// as it completes. Non-SNMP protocols then re-sweep the same targets from
// the same campaign base time, storing their alias evidence alongside the
// SNMPv3 samples (the SNMPv3 campaign itself stays byte-identical: the
// evidence sweeps neither advance the scan epoch nor touch derived state).
func runSim(ctx context.Context, st *store.Store, reg *obs.Registry, simSeed int64, campaigns, rate, workers int, protocols []string) error {
	w := netsim.Generate(netsim.TinyConfig(simSeed))
	w.RegisterMetrics(reg)
	for i := 1; i <= campaigns; i++ {
		day := 15 + 6*(i-1)
		base := w.Cfg.StartTime.Add(time.Duration(day) * 24 * time.Hour)
		w.Clock.Set(base)
		w.BeginScan()
		targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), simSeed+int64(i))
		if err != nil {
			return err
		}
		cfg := scanner.Config{
			Rate: rate, Batch: 256, Clock: w.Clock, Seed: simSeed + int64(i), Workers: workers,
			Obs: reg,
		}
		res, err := scanner.ScanContext(ctx, w.NewTransport(), targets, cfg)
		if err != nil {
			return err
		}
		c := core.Collect(res)
		n, err := st.Ingest(ctx, c)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "snmpfpd: campaign %d: %d IPs from sim day %d\n", n, len(c.ByIP), day)
		for _, name := range protocols {
			if name == "snmpv3" {
				continue
			}
			m, err := probe.Get(name)
			if err != nil {
				return err
			}
			w.Clock.Set(base)
			pres, err := scanner.ScanProbe(ctx, w.NewTransport(), targets, cfg, scanner.ProbeSpec{
				Payload: m.AppendProbe(nil, cfg.Seed), Ident: m.Ident(cfg.Seed),
			})
			if err != nil {
				return err
			}
			pc := probe.Collect(m, pres)
			if err := st.IngestEvidence(ctx, name, store.EvidenceFromCampaign(pc)); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "snmpfpd: campaign %d: %d %s evidence IPs\n", n, len(pc.ByIP), name)
		}
	}
	return nil
}

func runBenchJSON(path string) {
	res, err := serve.RunBench(serve.BenchConfig{})
	if err != nil {
		fatal(err)
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "snmpfpd: wrote %s (ingest %.0f samples/s, ip p99 %.0fµs)\n",
		path, res.Ingest.SamplesPerSec, res.Query["ip"].P99Us)
}

func httpGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body, nil
}

// closeStore seals the store on shutdown; a failed seal means buffered
// samples may not have reached a segment, which the operator must hear
// about.
func closeStore(st *store.Store) {
	if err := st.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "snmpfpd: store close: %v\n", err)
	}
}

func shutdown(hs *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "snmpfpd: %v\n", err)
	os.Exit(1)
}
