// Command reproduce runs the full evaluation of "Third Time's Not a Charm:
// Exploiting SNMPv3 for Router Fingerprinting" (IMC '21) against the
// simulated Internet and prints every table and figure in paper order.
//
// Usage:
//
//	reproduce [-seed N] [-tiny] [-only id,id,...] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"snmpv3fp/internal/experiments"
	"snmpv3fp/internal/netsim"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	tiny := flag.Bool("tiny", false, "use the tiny test-scale world")
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	outDir := flag.String("out", "", "also write each artifact to <dir>/<id>.txt")
	workers := flag.Int("workers", 0, "scan engine workers per campaign (0 = one per CPU; results are identical for any count)")
	flag.Parse()

	if *list {
		for _, ex := range experiments.All {
			fmt.Printf("%-8s %s\n", ex.ID, ex.Title)
		}
		return
	}

	cfg := netsim.DefaultConfig(*seed)
	if *tiny {
		cfg = netsim.TinyConfig(*seed)
	}
	fmt.Fprintf(os.Stderr, "generating world and running campaigns (seed %d)...\n", *seed)
	t0 := time.Now()
	env, err := experiments.NewEnvOpts(cfg, experiments.Options{Workers: *workers})
	if err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "environment ready in %v\n", time.Since(t0).Round(time.Millisecond))

	selected := experiments.All
	if *only != "" {
		selected = nil
		for _, id := range strings.Split(*only, ",") {
			ex, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "reproduce: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, ex)
		}
	}
	for _, ex := range selected {
		start := time.Now()
		out, err := ex.Run(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %s: %v\n", ex.ID, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s ====\n", ex.Title)
		fmt.Println(out)
		if *outDir != "" {
			path := filepath.Join(*outDir, ex.ID+".txt")
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(path, []byte(ex.Title+"\n\n"+out), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", ex.ID, time.Since(start).Round(time.Millisecond))
	}
}
