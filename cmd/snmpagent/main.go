// Command snmpagent runs a standalone SNMP agent on a loopback UDP port,
// modelling a configurable vendor OS. It is the interop target for
// cmd/snmpscan and the examples.
//
// Usage:
//
//	snmpagent [-os cisco-ios|cisco-iosxr|junos|net-snmp] [-community c]
//	          [-iface-enable] [-boots n] [-uptime d]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/labsim"
)

func main() {
	osName := flag.String("os", "cisco-ios", "device OS model: cisco-ios, cisco-iosxr, junos, net-snmp")
	community := flag.String("community", "public", "SNMPv2c read community ('' disables SNMP entirely)")
	ifaceEnable := flag.Bool("iface-enable", true, "enable SNMP on the ingress interface (Junos semantics)")
	boots := flag.Int64("boots", 3, "engine boots value")
	uptime := flag.Duration("uptime", 90*24*time.Hour, "time since last reboot")
	flag.Parse()

	var behaviour labsim.OSBehavior
	var engID []byte
	switch *osName {
	case "cisco-ios":
		behaviour = labsim.CiscoIOS
		engID = engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 0xaa, 0xbb, 0xcc})
	case "cisco-iosxr":
		behaviour = labsim.CiscoIOSXR
		engID = engineid.NewMAC(9, [6]byte{0x70, 0xdb, 0x98, 0x11, 0x22, 0x33})
	case "junos":
		behaviour = labsim.JuniperJunos
		engID = engineid.NewMAC(2636, [6]byte{0x2c, 0x6b, 0xf5, 0x44, 0x55, 0x66})
	case "net-snmp":
		behaviour = labsim.NetSNMP
		engID = engineid.NewNetSNMP([8]byte{0x0f, 0x01, 0x0e, 0x37, 0x32, 0xbe, 0xd2, 0x5e})
	default:
		fmt.Fprintf(os.Stderr, "snmpagent: unknown -os %q\n", *osName)
		os.Exit(2)
	}

	agent, err := labsim.Start(labsim.Config{
		OS:               behaviour,
		Community:        *community,
		InterfaceEnabled: *ifaceEnable,
		EngineID:         engID,
		Boots:            *boots,
		BootTime:         time.Now().Add(-*uptime),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "snmpagent: %v\n", err)
		os.Exit(1)
	}
	defer agent.Close()
	fmt.Printf("%s\nlistening on %v (engine ID %x)\n", agent, agent.Addr(), engID)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("served %d queries\n", agent.Queries())
}
