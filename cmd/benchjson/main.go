// Command benchjson runs the continuous benchmark suite
// (internal/benchsuite) through testing.Benchmark and writes the
// machine-readable baselines BENCH_scan.json, BENCH_store.json and
// BENCH_serve.json at the repository root (or under -dir).
//
// Each file records ns/op, B/op and allocs/op per benchmark next to the
// pre-optimization baseline captured before the zero-allocation hot-path
// work, with the byte- and allocation-reduction factors computed in place.
// CI runs the cheap `make bench-smoke` pass instead; refresh these files
// manually with `make bench-json` on a quiet machine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"snmpv3fp/internal/benchsuite"
)

// Baseline is the pre-optimization measurement a current run is compared
// against: the same benchmark body, run before the zero-allocation probe
// encode / response parse paths, pooled receive buffers and batched store
// ingest landed.
type Baseline struct {
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Entry is one benchmark's current numbers plus its baseline comparison.
type Entry struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     int64              `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// PrePR is the baseline block; reduction factors are baseline/current
	// (2.0 means the run allocates half the bytes the baseline did).
	PrePR           *Baseline `json:"baseline_pre_pr,omitempty"`
	BytesReduction  float64   `json:"bytes_reduction,omitempty"`
	AllocsReduction float64   `json:"allocs_reduction,omitempty"`
}

// File is the schema of each BENCH_*.json.
type File struct {
	Suite      string  `json:"suite"`
	Go         string  `json:"go"`
	Benchmarks []Entry `json:"benchmarks"`
}

type benchDef struct {
	name string
	fn   func(*testing.B)
	pre  *Baseline
}

// Pre-PR baselines, measured on this suite with the allocating codec paths
// (snmp.EncodeDiscoveryRequest / snmp.ParseDiscoveryResponse), per-datagram
// receive copies and per-sample store locking.
var suites = map[string][]benchDef{
	"scan": {
		{"ScanCampaign", benchsuite.ScanCampaign, &Baseline{27399152, 208874}},
		{"CollectResponses", benchsuite.CollectResponses, &Baseline{13895504, 191260}},
		{"EncodeProbe", benchsuite.EncodeProbe, &Baseline{576, 6}},
		{"ParseResponse", benchsuite.ParseResponse, &Baseline{883, 14}},
	},
	"store": {
		{"StoreIngest", benchsuite.StoreIngest, &Baseline{15002628, 76294}},
		// Durable arm: same campaign bodies with the WAL and on-disk
		// segments enabled. No pre-PR baseline — durability did not exist
		// before this suite entry; the interesting comparison is against
		// StoreIngest in the same file.
		{"StoreDurableIngest", benchsuite.StoreDurableIngest, nil},
		{"StoreCompact", benchsuite.StoreCompact, &Baseline{2763208, 9610}},
	},
	"serve": {
		{"ServeIP", benchsuite.ServeIP, &Baseline{15504, 72}},
		{"ServeVendors", benchsuite.ServeVendors, &Baseline{11681, 39}},
		{"ServeStats", benchsuite.ServeStats, &Baseline{12764, 56}},
	},
}

func ratio(base, cur int64) float64 {
	if base <= 0 || cur <= 0 {
		return 0
	}
	return float64(base) / float64(cur)
}

func runSuite(name string, defs []benchDef) File {
	f := File{Suite: name, Go: runtime.Version()}
	for _, d := range defs {
		r := testing.Benchmark(d.fn)
		e := Entry{
			Name:        d.name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			PrePR:       d.pre,
		}
		if len(r.Extra) > 0 {
			e.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				e.Metrics[k] = v
			}
		}
		if d.pre != nil {
			e.BytesReduction = ratio(d.pre.BytesPerOp, e.BytesPerOp)
			e.AllocsReduction = ratio(d.pre.AllocsPerOp, e.AllocsPerOp)
		}
		fmt.Printf("  %-18s %12d ns/op %12d B/op %9d allocs/op\n",
			d.name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
		f.Benchmarks = append(f.Benchmarks, e)
	}
	return f
}

func main() {
	dir := flag.String("dir", ".", "directory to write the BENCH_*.json files into")
	only := flag.String("suite", "", "run a single suite (scan, store or serve) instead of all three")
	flag.Parse()
	for _, suite := range []string{"scan", "store", "serve"} {
		if *only != "" && suite != *only {
			continue
		}
		fmt.Printf("suite %s:\n", suite)
		f := runSuite(suite, suites[suite])
		out, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		path := filepath.Join(*dir, "BENCH_"+suite+".json")
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
