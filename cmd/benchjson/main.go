// Command benchjson runs the continuous benchmark suite
// (internal/benchsuite) through testing.Benchmark and writes the
// machine-readable baselines BENCH_scan.json, BENCH_store.json and
// BENCH_serve.json at the repository root (or under -dir).
//
// Each file records ns/op, B/op and allocs/op per benchmark next to the
// pre-optimization baseline captured before the zero-allocation hot-path
// work, with the byte- and allocation-reduction factors computed in place.
// The scan suite additionally carries the ScanScaling (workers, batch) grid —
// the probes-per-second curve behind the batch transport tuning.
// CI runs the cheap `make bench-smoke` pass instead; refresh these files
// manually with `make bench-json` on a quiet machine.
//
// With -gate FACTOR the command regresses instead of refreshing: it re-runs
// one gated benchmark per suite — ScanCampaign, StoreDurableIngest and
// ServeIP — and exits nonzero when any measured ns/op exceeds its
// checked-in BENCH_*.json entry by more than FACTOR times the gate's
// per-suite noise headroom (CI uses 1.15 via `make bench-gate`).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"snmpv3fp/internal/benchsuite"
)

// Baseline is the pre-optimization measurement a current run is compared
// against: the same benchmark body, run before the zero-allocation probe
// encode / response parse paths, pooled receive buffers and batched store
// ingest landed.
type Baseline struct {
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Entry is one benchmark's current numbers plus its baseline comparison.
type Entry struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     int64              `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// PrePR is the baseline block; reduction factors are baseline/current
	// (2.0 means the run allocates half the bytes the baseline did).
	PrePR           *Baseline `json:"baseline_pre_pr,omitempty"`
	BytesReduction  float64   `json:"bytes_reduction,omitempty"`
	AllocsReduction float64   `json:"allocs_reduction,omitempty"`
}

// File is the schema of each BENCH_*.json.
type File struct {
	Suite      string  `json:"suite"`
	Go         string  `json:"go"`
	Benchmarks []Entry `json:"benchmarks"`
}

type benchDef struct {
	name string
	fn   func(*testing.B)
	pre  *Baseline
}

// Pre-PR baselines, measured on this suite with the allocating codec paths
// (snmp.EncodeDiscoveryRequest / snmp.ParseDiscoveryResponse), per-datagram
// receive copies and per-sample store locking.
var suites = map[string][]benchDef{
	"scan": append([]benchDef{
		{"ScanCampaign", benchsuite.ScanCampaign, &Baseline{27399152, 208874}},
		// Multi-protocol arm: no pre-PR baseline — the module seam did not
		// exist before; the interesting comparison is against ScanCampaign.
		{"IcmpTsCampaign", benchsuite.IcmpTsCampaign, nil},
		{"CollectResponses", benchsuite.CollectResponses, &Baseline{13895504, 191260}},
		{"EncodeProbe", benchsuite.EncodeProbe, &Baseline{576, 6}},
		{"ParseResponse", benchsuite.ParseResponse, &Baseline{883, 14}},
	}, scalingDefs()...),
	"store": {
		{"StoreIngest", benchsuite.StoreIngest, &Baseline{15002628, 76294}},
		// Durable arm: same campaign bodies with the WAL and on-disk
		// segments enabled. No pre-PR baseline — durability did not exist
		// before this suite entry; the interesting comparison is against
		// StoreIngest in the same file.
		{"StoreDurableIngest", benchsuite.StoreDurableIngest, nil},
		{"StoreCompact", benchsuite.StoreCompact, &Baseline{2763208, 9610}},
	},
	"serve": {
		{"ServeIP", benchsuite.ServeIP, &Baseline{15504, 72}},
		{"ServeVendors", benchsuite.ServeVendors, &Baseline{11681, 39}},
		{"ServeStats", benchsuite.ServeStats, &Baseline{12764, 56}},
	},
}

// scalingDefs expands the ScanScaling (workers, batch) grid into suite
// entries; no pre-PR baseline — the batched transport did not exist before
// the grid, and the interesting comparison is across the grid itself.
func scalingDefs() []benchDef {
	var defs []benchDef
	for _, workers := range benchsuite.ScanScalingGrid.Workers {
		for _, batch := range benchsuite.ScanScalingGrid.Batches {
			defs = append(defs, benchDef{
				name: fmt.Sprintf("ScanScaling/workers=%d/batch=%d", workers, batch),
				fn:   benchsuite.ScanScaling(workers, batch),
			})
		}
	}
	return defs
}

func ratio(base, cur int64) float64 {
	if base <= 0 || cur <= 0 {
		return 0
	}
	return float64(base) / float64(cur)
}

func runSuite(name string, defs []benchDef) File {
	f := File{Suite: name, Go: runtime.Version()}
	for _, d := range defs {
		r := testing.Benchmark(d.fn)
		e := Entry{
			Name:        d.name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			PrePR:       d.pre,
		}
		if len(r.Extra) > 0 {
			e.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				e.Metrics[k] = v
			}
		}
		if d.pre != nil {
			e.BytesReduction = ratio(d.pre.BytesPerOp, e.BytesPerOp)
			e.AllocsReduction = ratio(d.pre.AllocsPerOp, e.AllocsPerOp)
		}
		fmt.Printf("  %-18s %12d ns/op %12d B/op %9d allocs/op\n",
			d.name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
		f.Benchmarks = append(f.Benchmarks, e)
	}
	return f
}

// gateDef is one CI regression gate: a benchmark re-measured against its
// checked-in BENCH_<suite>.json entry. headroom scales the global gate
// factor per suite — the scan campaign is long and stable so it gets none,
// the durable-store arm jitters with fsync latency, and the serve
// microbenchmarks run in microseconds where scheduler noise dominates.
type gateDef struct {
	suite    string
	bench    string
	fn       func(*testing.B)
	headroom float64
}

var gates = []gateDef{
	{"scan", "ScanCampaign", benchsuite.ScanCampaign, 1.0},
	{"scan", "IcmpTsCampaign", benchsuite.IcmpTsCampaign, 1.15},
	{"store", "StoreDurableIngest", benchsuite.StoreDurableIngest, 1.2},
	{"serve", "ServeIP", benchsuite.ServeIP, 1.5},
}

// baselineNsPerOp reads one benchmark's recorded ns/op from the checked-in
// BENCH_<suite>.json.
func baselineNsPerOp(dir, suite, bench string) (int64, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_"+suite+".json"))
	if err != nil {
		return 0, fmt.Errorf("reading baseline: %w", err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return 0, fmt.Errorf("parsing baseline: %w", err)
	}
	for _, e := range f.Benchmarks {
		if e.Name == bench {
			if e.NsPerOp <= 0 {
				break
			}
			return e.NsPerOp, nil
		}
	}
	return 0, fmt.Errorf("no usable %s entry in BENCH_%s.json", bench, suite)
}

// gateAll is the CI regression gate: every gated benchmark is re-measured
// and compared against its checked-in baseline. A run slower than factor
// times headroom times the recorded ns/op fails; all gates run even after
// a failure so one CI pass reports every regression at once.
func gateAll(dir string, factor float64) error {
	var failures []string
	for _, g := range gates {
		base, err := baselineNsPerOp(dir, g.suite, g.bench)
		if err != nil {
			return err
		}
		got := testing.Benchmark(g.fn).NsPerOp()
		limit := int64(float64(base) * factor * g.headroom)
		fmt.Printf("gate: %-18s %12d ns/op, baseline %12d ns/op, limit %.2fx = %d ns/op\n",
			g.bench, got, base, factor*g.headroom, limit)
		if got > limit {
			failures = append(failures,
				fmt.Sprintf("%s regressed: %d ns/op > %d ns/op (%.2fx baseline)",
					g.bench, got, limit, factor*g.headroom))
		}
	}
	if len(failures) > 0 {
		return errors.New(strings.Join(failures, "; "))
	}
	return nil
}

func main() {
	dir := flag.String("dir", ".", "directory to write the BENCH_*.json files into")
	only := flag.String("suite", "", "run a single suite (scan, store or serve) instead of all three")
	gate := flag.Float64("gate", 0, "regression-gate mode: re-run the gated benchmarks (scan campaign, durable store ingest, serve latency) and fail if any exceeds its checked-in baseline by this factor times its per-suite headroom (CI uses 1.15); 0 refreshes the baselines instead")
	flag.Parse()
	if *gate > 0 {
		if err := gateAll(*dir, *gate); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	for _, suite := range []string{"scan", "store", "serve"} {
		if *only != "" && suite != *only {
			continue
		}
		fmt.Printf("suite %s:\n", suite)
		f := runSuite(suite, suites[suite])
		out, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		path := filepath.Join(*dir, "BENCH_"+suite+".json")
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
