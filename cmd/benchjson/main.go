// Command benchjson runs the continuous benchmark suite
// (internal/benchsuite) through testing.Benchmark and writes the
// machine-readable baselines BENCH_scan.json, BENCH_store.json and
// BENCH_serve.json at the repository root (or under -dir).
//
// Each file records ns/op, B/op and allocs/op per benchmark next to the
// pre-optimization baseline captured before the zero-allocation hot-path
// work, with the byte- and allocation-reduction factors computed in place.
// The scan suite additionally carries the ScanScaling (workers, batch) grid —
// the probes-per-second curve behind the batch transport tuning.
// CI runs the cheap `make bench-smoke` pass instead; refresh these files
// manually with `make bench-json` on a quiet machine.
//
// With -gate FACTOR the command regresses instead of refreshing: it re-runs
// the gated benchmarks — ScanCampaign, IcmpTsCampaign, StoreDurableIngest
// and the serve latency arms — and exits nonzero when any measured ns/op or
// p99_ns exceeds its checked-in BENCH_*.json entry by more than FACTOR
// times the gate's per-suite noise headroom (CI uses 1.15 via
// `make bench-gate`). Two read-tier SLOs ride along: warm cached /v1/ip
// p99 must stay under the fixed pre-cache ServeIP average, and cold
// negative /v1/ip lookups must read ≥5x fewer segment bytes with bloom
// filters than without.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"snmpv3fp/internal/benchsuite"
)

// Baseline is the pre-optimization measurement a current run is compared
// against: the same benchmark body, run before the zero-allocation probe
// encode / response parse paths, pooled receive buffers and batched store
// ingest landed.
type Baseline struct {
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Entry is one benchmark's current numbers plus its baseline comparison.
type Entry struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     int64              `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// PrePR is the baseline block; reduction factors are baseline/current
	// (2.0 means the run allocates half the bytes the baseline did).
	PrePR           *Baseline `json:"baseline_pre_pr,omitempty"`
	BytesReduction  float64   `json:"bytes_reduction,omitempty"`
	AllocsReduction float64   `json:"allocs_reduction,omitempty"`
}

// File is the schema of each BENCH_*.json.
type File struct {
	Suite      string  `json:"suite"`
	Go         string  `json:"go"`
	Benchmarks []Entry `json:"benchmarks"`
}

type benchDef struct {
	name string
	fn   func(*testing.B)
	pre  *Baseline
}

// Pre-PR baselines, measured on this suite with the allocating codec paths
// (snmp.EncodeDiscoveryRequest / snmp.ParseDiscoveryResponse), per-datagram
// receive copies and per-sample store locking.
var suites = map[string][]benchDef{
	"scan": append([]benchDef{
		{"ScanCampaign", benchsuite.ScanCampaign, &Baseline{27399152, 208874}},
		// Multi-protocol arm: no pre-PR baseline — the module seam did not
		// exist before; the interesting comparison is against ScanCampaign.
		{"IcmpTsCampaign", benchsuite.IcmpTsCampaign, nil},
		{"CollectResponses", benchsuite.CollectResponses, &Baseline{13895504, 191260}},
		{"EncodeProbe", benchsuite.EncodeProbe, &Baseline{576, 6}},
		{"ParseResponse", benchsuite.ParseResponse, &Baseline{883, 14}},
	}, scalingDefs()...),
	"store": {
		{"StoreIngest", benchsuite.StoreIngest, &Baseline{15002628, 76294}},
		// Durable arm: same campaign bodies with the WAL and on-disk
		// segments enabled. No pre-PR baseline — durability did not exist
		// before this suite entry; the interesting comparison is against
		// StoreIngest in the same file.
		{"StoreDurableIngest", benchsuite.StoreDurableIngest, nil},
		{"StoreCompact", benchsuite.StoreCompact, &Baseline{2763208, 9610}},
	},
	"serve": {
		{"ServeIP", benchsuite.ServeIP, &Baseline{10030, 54}},
		// Read-tier arms: no pre-PR baseline — the result cache and the
		// bloom-filtered segment read path did not exist before; the
		// interesting comparisons are warm-vs-cold within this file and
		// MissBloom-vs-MissNoBloom (the bytes-read reduction the bench gate
		// enforces at ≥5x).
		{"ServeIPWarm", benchsuite.ServeIPWarm, nil},
		{"ServeIPMissBloom", benchsuite.ServeIPMissBloom, nil},
		{"ServeIPMissNoBloom", benchsuite.ServeIPMissNoBloom, nil},
		{"ServeVendors", benchsuite.ServeVendors, &Baseline{6208, 20}},
		{"ServeStats", benchsuite.ServeStats, &Baseline{7300, 38}},
	},
}

// scalingDefs expands the ScanScaling (workers, batch) grid into suite
// entries; no pre-PR baseline — the batched transport did not exist before
// the grid, and the interesting comparison is across the grid itself.
func scalingDefs() []benchDef {
	var defs []benchDef
	for _, workers := range benchsuite.ScanScalingGrid.Workers {
		for _, batch := range benchsuite.ScanScalingGrid.Batches {
			defs = append(defs, benchDef{
				name: fmt.Sprintf("ScanScaling/workers=%d/batch=%d", workers, batch),
				fn:   benchsuite.ScanScaling(workers, batch),
			})
		}
	}
	return defs
}

func ratio(base, cur int64) float64 {
	if base <= 0 || cur <= 0 {
		return 0
	}
	return float64(base) / float64(cur)
}

func runSuite(name string, defs []benchDef) File {
	f := File{Suite: name, Go: runtime.Version()}
	for _, d := range defs {
		r := testing.Benchmark(d.fn)
		e := Entry{
			Name:        d.name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			PrePR:       d.pre,
		}
		if len(r.Extra) > 0 {
			e.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				e.Metrics[k] = v
			}
		}
		if d.pre != nil {
			e.BytesReduction = ratio(d.pre.BytesPerOp, e.BytesPerOp)
			e.AllocsReduction = ratio(d.pre.AllocsPerOp, e.AllocsPerOp)
		}
		fmt.Printf("  %-18s %12d ns/op %12d B/op %9d allocs/op\n",
			d.name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
		f.Benchmarks = append(f.Benchmarks, e)
	}
	return f
}

// gateDef is one CI regression gate: a benchmark re-measured against its
// checked-in BENCH_<suite>.json entry (or a fixed SLO). headroom scales the
// global gate factor per suite — the scan campaign is long and stable so it
// gets none, the durable-store arm jitters with fsync latency, and the
// serve microbenchmarks run in microseconds where scheduler noise
// dominates. metric selects a ReportMetric value instead of ns/op (the p99
// latency gates); absLimit pins the metric to a fixed ceiling instead of a
// relative baseline — the warm-read p99 SLO is absolute by design: warm
// cache hits must beat the pre-cache ServeIP average no matter what the
// baseline file says.
type gateDef struct {
	suite    string
	bench    string
	fn       func(*testing.B)
	headroom float64
	metric   string  // "" gates ns/op; otherwise this ReportMetric key
	absLimit float64 // > 0: fixed limit for the value, no baseline lookup
}

var gates = []gateDef{
	{suite: "scan", bench: "ScanCampaign", fn: benchsuite.ScanCampaign, headroom: 1.0},
	{suite: "scan", bench: "IcmpTsCampaign", fn: benchsuite.IcmpTsCampaign, headroom: 1.15},
	{suite: "store", bench: "StoreDurableIngest", fn: benchsuite.StoreDurableIngest, headroom: 1.2},
	{suite: "serve", bench: "ServeIP", fn: benchsuite.ServeIP, headroom: 1.5},
	{suite: "serve", bench: "ServeVendors", fn: benchsuite.ServeVendors, headroom: 1.5, metric: "p99_ns"},
	// The warm-read SLO: cached /v1/ip p99 must beat the pre-cache ServeIP
	// ns/op (18474 ns, BENCH_serve.json before the read-tier work).
	{suite: "serve", bench: "ServeIPWarm", fn: benchsuite.ServeIPWarm, metric: "p99_ns", absLimit: 18474},
}

// bloomBytesGateRatio is the cold-negative-lookup contract: misses against
// bloom-filtered segments must read at least this many times fewer segment
// bytes than the unfiltered path.
const bloomBytesGateRatio = 5.0

// baselineValue reads one benchmark's recorded ns/op (metric == "") or
// extra metric from the checked-in BENCH_<suite>.json.
func baselineValue(dir, suite, bench, metric string) (float64, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_"+suite+".json"))
	if err != nil {
		return 0, fmt.Errorf("reading baseline: %w", err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return 0, fmt.Errorf("parsing baseline: %w", err)
	}
	for _, e := range f.Benchmarks {
		if e.Name != bench {
			continue
		}
		if metric == "" {
			if e.NsPerOp > 0 {
				return float64(e.NsPerOp), nil
			}
			break
		}
		if v, ok := e.Metrics[metric]; ok && v > 0 {
			return v, nil
		}
		break
	}
	if metric == "" {
		metric = "ns/op"
	}
	return 0, fmt.Errorf("no usable %s %s entry in BENCH_%s.json", bench, metric, suite)
}

// gateAll is the CI regression gate: every gated benchmark is re-measured
// and compared against its checked-in baseline (or fixed SLO), then the
// bloom bytes-read ratio is checked. All gates run even after a failure so
// one CI pass reports every regression at once.
func gateAll(dir string, factor float64) error {
	var failures []string
	for _, g := range gates {
		r := testing.Benchmark(g.fn)
		label, got := "ns/op", float64(r.NsPerOp())
		if g.metric != "" {
			label = g.metric
			var ok bool
			if got, ok = r.Extra[g.metric]; !ok {
				failures = append(failures, fmt.Sprintf("%s reported no %s", g.bench, g.metric))
				continue
			}
		}
		var limit float64
		if g.absLimit > 0 {
			limit = g.absLimit
			fmt.Printf("gate: %-18s %12.0f %s, SLO limit %.0f %s\n", g.bench, got, label, limit, label)
		} else {
			base, err := baselineValue(dir, g.suite, g.bench, g.metric)
			if err != nil {
				return err
			}
			limit = base * factor * g.headroom
			fmt.Printf("gate: %-18s %12.0f %s, baseline %12.0f %s, limit %.2fx = %.0f %s\n",
				g.bench, got, label, base, label, factor*g.headroom, limit, label)
		}
		if got > limit {
			failures = append(failures,
				fmt.Sprintf("%s regressed: %.0f %s > %.0f %s", g.bench, got, label, limit, label))
		}
	}
	if msg := gateBloomBytes(); msg != "" {
		failures = append(failures, msg)
	}
	if len(failures) > 0 {
		return errors.New(strings.Join(failures, "; "))
	}
	return nil
}

// gateBloomBytes re-measures the cold negative-lookup arms and fails when
// the filtered path reads less than bloomBytesGateRatio times fewer segment
// bytes per miss than the unfiltered one. The filtered arm typically reads
// zero bytes, so it is clamped to 1 before dividing.
func gateBloomBytes() string {
	bloom := testing.Benchmark(benchsuite.ServeIPMissBloom).Extra["seg_bytes/op"]
	noBloom := testing.Benchmark(benchsuite.ServeIPMissNoBloom).Extra["seg_bytes/op"]
	denom := bloom
	if denom < 1 {
		denom = 1
	}
	ratio := noBloom / denom
	fmt.Printf("gate: ServeIPMiss bloom %.1f seg_bytes/op vs no-bloom %.1f seg_bytes/op, ratio %.1fx (need ≥%.0fx)\n",
		bloom, noBloom, ratio, bloomBytesGateRatio)
	if ratio < bloomBytesGateRatio {
		return fmt.Sprintf("bloom bytes-read reduction %.1fx < %.0fx (bloom %.1f, no-bloom %.1f seg_bytes/op)",
			ratio, bloomBytesGateRatio, bloom, noBloom)
	}
	return ""
}

func main() {
	dir := flag.String("dir", ".", "directory to write the BENCH_*.json files into")
	only := flag.String("suite", "", "run a single suite (scan, store or serve) instead of all three")
	gate := flag.Float64("gate", 0, "regression-gate mode: re-run the gated benchmarks (scan campaign, durable store ingest, serve latency) and fail if any exceeds its checked-in baseline by this factor times its per-suite headroom (CI uses 1.15); 0 refreshes the baselines instead")
	flag.Parse()
	if *gate > 0 {
		if err := gateAll(*dir, *gate); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	for _, suite := range []string{"scan", "store", "serve"} {
		if *only != "" && suite != *only {
			continue
		}
		fmt.Printf("suite %s:\n", suite)
		f := runSuite(suite, suites[suite])
		out, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		path := filepath.Join(*dir, "BENCH_"+suite+".json")
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
