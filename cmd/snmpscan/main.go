// Command snmpscan runs an SNMPv3 discovery scan and prints one line per
// responding IP: address, engine ID, boots, engine time, derived last
// reboot, inferred vendor.
//
// Against real networks (only scan networks you are authorized to probe):
//
//	snmpscan -prefixes 192.0.2.0/24 -rate 1000
//	snmpscan -addrs 192.0.2.1,192.0.2.7 -port 161
//
// Against the simulated Internet:
//
//	snmpscan -sim -sim-seed 7
//	snmpscan -sim -sim-hostile -progress
//
// Multi-protocol fingerprinting (sim only) scans with several probe modules
// and fuses their alias evidence, reporting each protocol's marginal gain:
//
//	snmpscan -sim -protocols snmpv3,icmp-ts,ntp
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"snmpv3fp"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/records"
	"snmpv3fp/internal/scanner"
	"snmpv3fp/internal/vantage"
)

func main() {
	prefixes := flag.String("prefixes", "", "comma-separated CIDR prefixes to scan")
	addrs := flag.String("addrs", "", "comma-separated addresses to scan")
	port := flag.Uint("port", snmpv3fp.SNMPPort, "destination UDP port")
	rate := flag.Int("rate", 5000, "probe rate (packets per second)")
	timeout := flag.Duration("timeout", 5*time.Second, "post-send drain timeout")
	seed := flag.Int64("seed", 1, "permutation seed")
	shard := flag.Int("shard", 0, "this prober's shard index (ZMap-style multi-vantage split)")
	shards := flag.Int("shards", 1, "total number of probing shards")
	workers := flag.Int("workers", 1, "concurrent send workers (each paces its own shard at rate/workers)")
	retries := flag.Int("retries", 0, "extra passes re-probing non-responders after the drain window")
	progress := flag.Bool("progress", false, "report live campaign throughput on stderr")
	jsonOut := flag.Bool("json", false, "emit NDJSON records (for snmpalias) instead of text")
	protocols := flag.String("protocols", "snmpv3", "comma-separated probe modules to scan with (beyond snmpv3: sim only)")
	sim := flag.Bool("sim", false, "scan the simulated Internet instead of real targets")
	simSeed := flag.Int64("sim-seed", 1, "simulated world seed")
	simScan := flag.Int("sim-scan", 1, "simulated campaign number: 1 (day 15) or 2 (day 21)")
	simHostile := flag.Bool("sim-hostile", false, "run the simulated scan through the hostile path-fault layer")
	coordAddr := flag.String("vantage", "", "run as a vantage worker for the snmpcoord coordinator at this address")
	vantageName := flag.String("vantage-name", "", "vantage name reported to the coordinator (default hostname/pid)")
	killShards := flag.Int("vantage-kill-shards", 0, "test hook: sever the coordinator connection after completing N shards")
	killPartials := flag.Int("vantage-kill-partials", 0, "test hook: sever the coordinator connection after streaming N partial chunks")
	flag.Parse()

	// Ctrl-C drains the scan workers mid-campaign instead of killing the
	// process with responses unhandled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *coordAddr != "" {
		runVantage(ctx, *coordAddr, *vantageName, *killShards, *killPartials)
		return
	}

	var protoList []string
	for _, s := range strings.Split(*protocols, ",") {
		if s = strings.TrimSpace(s); s != "" {
			protoList = append(protoList, s)
		}
	}
	multi := len(protoList) != 1 || protoList[0] != "snmpv3"

	eng := engineConfig{workers: *workers, retries: *retries, progress: *progress}
	if *sim {
		if multi {
			scanSimMulti(ctx, *simSeed, *simScan, *rate, *seed, *simHostile, protoList, eng)
			return
		}
		scanSim(ctx, *simSeed, *simScan, *rate, *seed, *jsonOut, *simHostile, eng)
		return
	}
	if multi {
		fmt.Fprintln(os.Stderr, "snmpscan: -protocols beyond snmpv3 is sim-only (the icmp-ts and ntp modules have no real transport yet)")
		os.Exit(2)
	}

	var targets snmpv3fp.TargetSpace
	var err error
	switch {
	case *prefixes != "":
		var ps []netip.Prefix
		for _, s := range strings.Split(*prefixes, ",") {
			p, err := netip.ParsePrefix(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			ps = append(ps, p)
		}
		targets, err = scanner.NewPrefixSpaceShard(ps, *seed, *shard, *shards)
	case *addrs != "":
		var as []netip.Addr
		for _, s := range strings.Split(*addrs, ",") {
			a, err := netip.ParseAddr(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			as = append(as, a)
		}
		targets, err = snmpv3fp.NewListTargets(as, *seed)
	default:
		fmt.Fprintln(os.Stderr, "snmpscan: need -prefixes, -addrs or -sim")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	tr, err := snmpv3fp.NewUDPTransport(uint16(*port))
	if err != nil {
		fatal(err)
	}
	cfg := snmpv3fp.ScanConfig{Rate: *rate, Timeout: *timeout, Seed: *seed}
	eng.apply(&cfg)
	campaign, err := snmpv3fp.ScanContext(ctx, tr, targets, cfg)
	if err != nil {
		fatal(err)
	}
	emit(campaign, *jsonOut)
}

// engineConfig carries the sharded-engine flags into a ScanConfig.
type engineConfig struct {
	workers, retries int
	progress         bool
}

func (e engineConfig) apply(cfg *snmpv3fp.ScanConfig) {
	cfg.Workers = e.workers
	cfg.Retries = e.retries
	if e.progress {
		cfg.Progress = printProgress
	}
}

func printProgress(s snmpv3fp.ScanSnapshot) {
	fmt.Fprintf(os.Stderr,
		"pass %d: sent %d/%d (retried %d), received %d (off-path %d), %.0f probes/s across %d shards\n",
		s.Pass+1, s.Sent, s.Targets, s.Retried, s.Received, s.OffPath, s.AchievedRate, len(s.Shards))
}

// runVantage turns this process into a vantage worker: it dials the
// coordinator, receives the campaign spec, and scans leased shards of the
// simulated world until the coordinator says the campaign is done. The
// campaign's parameters all come from the coordinator; local scan flags are
// ignored.
func runVantage(ctx context.Context, addr, name string, killShards, killPartials int) {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fatal(err)
	}
	err = vantage.RunNode(ctx, conn, vantage.NodeConfig{
		Name:              name,
		KillAfterShards:   killShards,
		KillAfterPartials: killPartials,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "snmpscan: vantage %s: campaign complete\n", name)
}

func scanSim(ctx context.Context, simSeed int64, simScan, rate int, seed int64, jsonOut, hostile bool, eng engineConfig) {
	w := netsim.Generate(netsim.TinyConfig(simSeed))
	if hostile {
		w.Cfg.Faults = netsim.HostileProfile()
	}
	day := 15
	if simScan == 2 {
		day = 21
	}
	w.Clock.Set(w.Cfg.StartTime.Add(time.Duration(day) * 24 * time.Hour))
	// Advance the per-campaign epoch so scan 2 sees scan-2 loss patterns.
	for i := 0; i < simScan; i++ {
		w.BeginScan()
	}
	targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), seed)
	if err != nil {
		fatal(err)
	}
	cfg := snmpv3fp.ScanConfig{Rate: rate, Clock: w.Clock, Seed: seed}
	eng.apply(&cfg)
	campaign, err := snmpv3fp.ScanContext(ctx, w.NewTransport(), targets, cfg)
	if err != nil {
		fatal(err)
	}
	emit(campaign, jsonOut)
}

// scanSimMulti runs one campaign per requested probe module over the same
// simulated world and fuses the per-protocol alias evidence. Each protocol
// gets a fresh transport with the virtual clock reset to the campaign base,
// so the campaigns are deterministic regardless of protocol order.
func scanSimMulti(ctx context.Context, simSeed int64, simScan, rate int, seed int64, hostile bool, protocols []string, eng engineConfig) {
	w := netsim.Generate(netsim.TinyConfig(simSeed))
	if hostile {
		w.Cfg.Faults = netsim.HostileProfile()
	}
	day := 15
	if simScan == 2 {
		day = 21
	}
	base := w.Cfg.StartTime.Add(time.Duration(day) * 24 * time.Hour)
	for i := 0; i < simScan; i++ {
		w.BeginScan()
	}
	targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), seed)
	if err != nil {
		fatal(err)
	}
	cfg := snmpv3fp.ScanConfig{Rate: rate, Clock: w.Clock, Seed: seed, Protocols: protocols}
	eng.apply(&cfg)
	newTransport := func(string) (snmpv3fp.Transport, error) {
		w.Clock.Set(base)
		return w.NewTransport(), nil
	}
	camps, err := snmpv3fp.ScanProtocols(ctx, newTransport, targets, cfg)
	if err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(camps))
	for name := range camps {
		names = append(names, name)
	}
	sort.Strings(names)
	ev := make([]snmpv3fp.ProtocolEvidence, 0, len(names))
	for _, name := range names {
		c := camps[name]
		fmt.Fprintf(os.Stderr, "%s: %d responsive IPs, %d packets (%d malformed, %d truncated, %d mismatched msgID, %d duplicates, %d off-path rejected)\n",
			name, len(c.ByIP), c.TotalPackets, c.Malformed, c.Truncated, c.Mismatched, c.Duplicates, c.OffPath)
		ev = append(ev, snmpv3fp.ProtocolEvidence{Protocol: name, Weight: c.Weight, Groups: c.Groups()})
	}
	printFusion(snmpv3fp.Fuse(ev))
}

// printFusion renders the fusion report: totals, then per-protocol
// accounting with the marginal alias gain — what each protocol added beyond
// every other.
func printFusion(rep *snmpv3fp.FusionReport) {
	fmt.Printf("fusion: %d fused sets, %d accepted pairs, %d conflict pairs\n",
		len(rep.Sets), rep.AcceptedPairs, rep.ConflictPairs)
	for _, pr := range rep.Protocols {
		fmt.Printf("  %-8s weight=%.1f ips=%d groups=%d proposed=%d accepted=%d conflicted=%d marginal=+%d pairs in %d sets\n",
			pr.Protocol, pr.Weight, pr.IPs, pr.Groups, pr.Proposed, pr.Accepted, pr.Conflicted,
			pr.MarginalPairs, pr.MarginalSets)
	}
}

func emit(c *snmpv3fp.Campaign, jsonOut bool) {
	if jsonOut {
		if err := records.WriteCampaign(os.Stdout, c); err != nil {
			fatal(err)
		}
		summary(c)
		return
	}
	printCampaign(c)
}

// summary prints the campaign totals, including the hostile-path rejection
// counters, on stderr.
func summary(c *snmpv3fp.Campaign) {
	fmt.Fprintf(os.Stderr, "%d responsive IPs, %d response packets (%d malformed, %d truncated, %d mismatched msgID, %d duplicates, %d off-path rejected)\n",
		len(c.ByIP), c.TotalPackets, c.Malformed, c.Truncated, c.Mismatched, c.Duplicates, c.OffPath)
}

func printCampaign(c *snmpv3fp.Campaign) {
	for _, o := range sorted(c) {
		fp := snmpv3fp.FingerprintEngineID(o.EngineID)
		fmt.Printf("%-40v engineID=0x%x boots=%d time=%d lastReboot=%s vendor=%s\n",
			o.IP, o.EngineID, o.EngineBoots, o.EngineTime,
			o.LastReboot().UTC().Format(time.RFC3339), fp.VendorLabel())
	}
	summary(c)
}

func sorted(c *snmpv3fp.Campaign) []*snmpv3fp.Observation {
	out := make([]*snmpv3fp.Observation, 0, len(c.ByIP))
	for _, o := range c.ByIP {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP.Less(out[j].IP) })
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "snmpscan: %v\n", err)
	os.Exit(1)
}
