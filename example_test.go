package snmpv3fp_test

import (
	"fmt"
	"time"

	"snmpv3fp"
	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/labsim"
	"snmpv3fp/internal/usm"
)

// ExampleProbe shows the paper's one-packet measurement primitive against a
// live agent: no credentials, yet the engine identifiers come back.
func ExampleProbe() {
	agent, err := labsim.Start(labsim.Config{
		OS:        labsim.CiscoIOS,
		Community: "pass123", // v2c community implicitly enables v3 discovery
		EngineID:  engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 0x31, 0xdb, 0x80}),
		Boots:     148,
		BootTime:  time.Now().Add(-time.Hour),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer agent.Close()

	tr, err := snmpv3fp.NewUDPTransport(agent.Addr().Port())
	if err != nil {
		fmt.Println(err)
		return
	}
	defer tr.Close()

	obs, err := snmpv3fp.Probe(tr, agent.Addr().Addr(), 2*time.Second)
	if err != nil {
		fmt.Println(err)
		return
	}
	fp := snmpv3fp.FingerprintEngineID(obs.EngineID)
	fmt.Printf("engine ID 0x%x\n", obs.EngineID)
	fmt.Printf("boots %d, vendor %s (via %s)\n", obs.EngineBoots, fp.VendorLabel(), fp.Source)
	// Output:
	// engine ID 0x8000000903588d0931db80
	// boots 148, vendor Cisco (via oui)
}

// ExampleClassifyEngineID classifies the paper's Figure 3 Brocade engine ID.
func ExampleClassifyEngineID() {
	id := snmpv3fp.ClassifyEngineID([]byte{0x80, 0x00, 0x07, 0xc7, 0x03, 0x74, 0x8e, 0xf8, 0x31, 0xdb, 0x80})
	fmt.Println(id.Format, id.Enterprise, id.EnterpriseName())
	mac, _ := id.MAC()
	fmt.Printf("%02x:%02x:%02x:%02x:%02x:%02x\n", mac[0], mac[1], mac[2], mac[3], mac[4], mac[5])
	// Output:
	// mac 1991 Foundry
	// 74:8e:f8:31:db:80
}

// ExampleCrackUSMPassword demonstrates the Section 8 offline attack: one
// captured authenticated message plus the (discovery-disclosed) engine ID
// suffice to brute-force the password.
func ExampleCrackUSMPassword() {
	engineID := engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 1, 2, 3})
	user := labsim.V3User{Name: "ops", Protocol: usm.AuthSHA1, Password: "cisco123"}
	captured, err := labsim.NewAuthenticatedGet(user, engineID, 3, 1000, 1, []uint32{1, 3, 6, 1, 2, 1, 1, 1, 0})
	if err != nil {
		fmt.Println(err)
		return
	}
	pw, tried, ok := snmpv3fp.CrackUSMPassword(captured, snmpv3fp.AuthSHA1,
		[]string{"admin", "public", "cisco123"})
	fmt.Println(pw, tried, ok)
	// Output:
	// cisco123 3 true
}
